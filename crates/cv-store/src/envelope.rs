//! The transport envelope: one coordinator↔member message on the wire.
//!
//! Everything the fleet exchanges — presentations, invariant uploads, patch
//! pushes, bootstrap snapshots, delta syncs, and the acks that make delivery
//! reliable — travels as an [`Envelope`]: an epoch-tagged, sequence-numbered
//! frame in the same versioned sectioned container snapshots and deltas use
//! (magic + format version + section table + per-section CRC-32). The
//! `(from, epoch, seq)` triple is the idempotence key: receivers treat any
//! duplicate or stale retransmit as a no-op, which is what lets a lossy
//! transport simply send again.
//!
//! Large payloads (patch plans, encoded snapshots) are held behind `Arc` so an
//! in-process transport fans an envelope out to thousands of members by
//! reference count, not by copy; the bytes are only materialized when an
//! envelope is actually encoded for a socket.

use crate::codec;
use crate::error::StoreError;
use crate::wire::{read_container, require_section, write_container, Reader, Writer};
use cv_core::PatchPlan;
use cv_inference::InvariantDatabase;
use cv_isa::{Addr, Word};
use std::sync::Arc;

/// Magic bytes opening an encoded envelope.
pub const ENVELOPE_MAGIC: [u8; 4] = *b"CVEV";

/// Envelope format version this build writes and the newest it decodes.
pub const ENVELOPE_VERSION: u32 = 1;

/// Section id: the addressing + sequencing header.
pub const SECTION_ENVELOPE_HEADER: u32 = 1;

/// Section id: the kind-specific payload.
pub const SECTION_ENVELOPE_PAYLOAD: u32 = 2;

const KIND_PAGE: u8 = 1;
const KIND_UPLOAD: u8 = 2;
const KIND_PATCH_PUSH: u8 = 3;
const KIND_SNAPSHOT: u8 = 4;
const KIND_DELTA: u8 = 5;
const KIND_ACK: u8 = 6;

/// What one envelope carries.
#[derive(Debug, Clone, PartialEq)]
pub enum EnvelopePayload {
    /// Coordinator → member: one presentation's page to execute this epoch.
    Page(Vec<Word>),
    /// Member → coordinator: the member's locally inferred invariants plus the
    /// procedure entry points it observed (the coordinator re-discovers the
    /// CFGs from its own image, as in the seed protocol).
    Upload {
        /// The member's local invariant database.
        invariants: Arc<InvariantDatabase>,
        /// Entry addresses of the procedures the member traced.
        procs: Arc<Vec<Addr>>,
    },
    /// Coordinator → member: the epoch-boundary merged patch plan.
    PatchPush(Arc<PatchPlan>),
    /// Coordinator → member: a full encoded [`Snapshot`](crate::Snapshot)
    /// container (bootstrap / full resync).
    Snapshot(Arc<Vec<u8>>),
    /// Coordinator → member: an encoded [`DeltaSnapshot`](crate::DeltaSnapshot)
    /// container advancing the member from `base_epoch`.
    Delta {
        /// Epoch of the checkpoint the member already holds.
        base_epoch: u64,
        /// The encoded delta container.
        bytes: Arc<Vec<u8>>,
    },
    /// Receiver → sender: acknowledges the envelope carrying the same
    /// `(epoch, seq)`; the retransmit loop stops resending it.
    Ack,
}

impl EnvelopePayload {
    fn kind(&self) -> u8 {
        match self {
            EnvelopePayload::Page(_) => KIND_PAGE,
            EnvelopePayload::Upload { .. } => KIND_UPLOAD,
            EnvelopePayload::PatchPush(_) => KIND_PATCH_PUSH,
            EnvelopePayload::Snapshot(_) => KIND_SNAPSHOT,
            EnvelopePayload::Delta { .. } => KIND_DELTA,
            EnvelopePayload::Ack => KIND_ACK,
        }
    }
}

/// One epoch-tagged, sequence-numbered message between a coordinator and a
/// member. `(from, epoch, seq)` identifies the message for deduplication; a
/// retransmit reuses all three, so receiving it twice is a no-op.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Sending peer (a member's node id, or the coordinator sentinel the
    /// transport layer defines).
    pub from: u32,
    /// Receiving peer.
    pub to: u32,
    /// The epoch the message belongs to; receivers drop stale epochs.
    pub epoch: u64,
    /// Sequence number within the sender's stream (monotonic per sender).
    pub seq: u64,
    /// What the envelope carries.
    pub payload: EnvelopePayload,
}

impl Envelope {
    /// The ack answering this envelope: direction reversed, same `(epoch, seq)`.
    pub fn ack(&self) -> Envelope {
        Envelope {
            from: self.to,
            to: self.from,
            epoch: self.epoch,
            seq: self.seq,
            payload: EnvelopePayload::Ack,
        }
    }

    /// Encode into the versioned container format.
    pub fn encode(&self) -> Vec<u8> {
        let mut header = Writer::new();
        header.u32(self.from);
        header.u32(self.to);
        header.u64(self.epoch);
        header.u64(self.seq);
        header.u8(self.payload.kind());

        let mut p = Writer::new();
        match &self.payload {
            EnvelopePayload::Page(words) => {
                p.u32(words.len() as u32);
                p.u32_column(words);
            }
            EnvelopePayload::Upload { invariants, procs } => {
                p.u32(procs.len() as u32);
                p.u32_column(procs);
                codec::write_database(&mut p, invariants);
            }
            EnvelopePayload::PatchPush(plan) => {
                codec::write_plan(&mut p, plan);
            }
            EnvelopePayload::Snapshot(bytes) => {
                p.u32(bytes.len() as u32);
                p.u8_column(bytes);
            }
            EnvelopePayload::Delta { base_epoch, bytes } => {
                p.u64(*base_epoch);
                p.u32(bytes.len() as u32);
                p.u8_column(bytes);
            }
            EnvelopePayload::Ack => {}
        }

        write_container(
            ENVELOPE_MAGIC,
            ENVELOPE_VERSION,
            &[
                (SECTION_ENVELOPE_HEADER, header.into_bytes()),
                (SECTION_ENVELOPE_PAYLOAD, p.into_bytes()),
            ],
        )
    }

    /// Decode an encoded envelope, rejecting (never misreading) truncation,
    /// checksum mismatches, unknown versions/magics, and impossible payloads.
    pub fn decode(bytes: &[u8]) -> Result<Envelope, StoreError> {
        let sections = read_container(bytes, ENVELOPE_MAGIC, ENVELOPE_VERSION)?;
        let mut h = Reader::new(require_section(&sections, SECTION_ENVELOPE_HEADER)?);
        let from = h.u32("envelope from")?;
        let to = h.u32("envelope to")?;
        let epoch = h.u64("envelope epoch")?;
        let seq = h.u64("envelope seq")?;
        let kind = h.u8("envelope kind")?;
        if !h.is_exhausted() {
            return Err(StoreError::Corrupt {
                context: "envelope header has trailing bytes",
            });
        }

        let mut p = Reader::new(require_section(&sections, SECTION_ENVELOPE_PAYLOAD)?);
        let payload = match kind {
            KIND_PAGE => {
                let n = p.len_u32(4, "page word count")?;
                EnvelopePayload::Page(p.u32_column(n, "page words")?)
            }
            KIND_UPLOAD => {
                let n = p.len_u32(4, "upload proc count")?;
                let procs = p.u32_column(n, "upload procs")?;
                let invariants = codec::read_database(&mut p)?;
                EnvelopePayload::Upload {
                    invariants: Arc::new(invariants),
                    procs: Arc::new(procs),
                }
            }
            KIND_PATCH_PUSH => EnvelopePayload::PatchPush(Arc::new(codec::read_plan(&mut p)?)),
            KIND_SNAPSHOT => {
                let n = p.len_u32(1, "snapshot byte count")?;
                EnvelopePayload::Snapshot(Arc::new(p.u8_column(n, "snapshot bytes")?))
            }
            KIND_DELTA => {
                let base_epoch = p.u64("delta base epoch")?;
                let n = p.len_u32(1, "delta byte count")?;
                EnvelopePayload::Delta {
                    base_epoch,
                    bytes: Arc::new(p.u8_column(n, "delta bytes")?),
                }
            }
            KIND_ACK => EnvelopePayload::Ack,
            _ => {
                return Err(StoreError::Corrupt {
                    context: "unknown envelope kind",
                });
            }
        };
        if !p.is_exhausted() {
            return Err(StoreError::Corrupt {
                context: "envelope payload has trailing bytes",
            });
        }

        Ok(Envelope {
            from,
            to,
            epoch,
            seq,
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(env: &Envelope) {
        let bytes = env.encode();
        let decoded = Envelope::decode(&bytes).expect("decode");
        assert_eq!(&decoded, env);
        assert_eq!(decoded.encode(), bytes, "re-encode must be byte-identical");
    }

    #[test]
    fn every_payload_kind_round_trips() {
        let plan = PatchPlan::new();
        for payload in [
            EnvelopePayload::Page(vec![1, 2, 3]),
            EnvelopePayload::Page(vec![]),
            EnvelopePayload::Upload {
                invariants: Arc::new(InvariantDatabase::new()),
                procs: Arc::new(vec![0x40, 0x80]),
            },
            EnvelopePayload::PatchPush(Arc::new(plan)),
            EnvelopePayload::Snapshot(Arc::new(vec![0xAB; 17])),
            EnvelopePayload::Delta {
                base_epoch: 9,
                bytes: Arc::new(vec![1, 2]),
            },
            EnvelopePayload::Ack,
        ] {
            roundtrip(&Envelope {
                from: 7,
                to: u32::MAX,
                epoch: 42,
                seq: 1_000_000,
                payload,
            });
        }
    }

    #[test]
    fn ack_reverses_direction_and_keeps_the_key() {
        let env = Envelope {
            from: 3,
            to: 9,
            epoch: 5,
            seq: 77,
            payload: EnvelopePayload::Page(vec![1]),
        };
        let ack = env.ack();
        assert_eq!((ack.from, ack.to), (9, 3));
        assert_eq!((ack.epoch, ack.seq), (5, 77));
        assert_eq!(ack.payload, EnvelopePayload::Ack);
    }

    #[test]
    fn unknown_kind_is_rejected_without_panic() {
        let env = Envelope {
            from: 1,
            to: 2,
            epoch: 3,
            seq: 4,
            payload: EnvelopePayload::Ack,
        };
        let mut bytes = env.encode();
        // The kind byte is the last byte of the header section; find it by
        // re-encoding with a different kind marker is fragile, so flip via
        // decode contract instead: corrupt every byte and require an error or
        // a clean decode — never a panic.
        for i in 0..bytes.len() {
            bytes[i] ^= 0x5A;
            let _ = Envelope::decode(&bytes);
            bytes[i] ^= 0x5A;
        }
    }
}
