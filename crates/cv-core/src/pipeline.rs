//! The single-application ClearView pipeline.
//!
//! [`ProtectedApplication`] owns a managed execution environment running one
//! application image, the learned model, and — via the [`manager`](crate::manager)
//! plane — a [`FailureResponder`](crate::FailureResponder) per failure location. Each
//! call to [`ProtectedApplication::present`] runs the application on one input (a
//! "page"), routes the outcome to the responders, applies the patch plan they
//! produce, and accounts the simulated time of each response phase — the per-exploit
//! breakdown reported in Table 3 of the paper.
//!
//! The single-machine pipeline is the degenerate manager deployment: one
//! [`ResponderShard`], one digest source, one presentation per batch. The fleet
//! engine (`cv-fleet`) drives many shards over the same plane in parallel; the
//! manager-parity tests prove both produce identical decisions.

use crate::config::ClearViewConfig;
use crate::manager::{
    DigestRouter, FailureEvent, NetPatchState, PatchPlan, ResponderShard, RoutedDigest,
};
use crate::responder::{DigestStatus, Directive, FailureResponder, Phase, RepairReport, RunDigest};
use cv_inference::{Invariant, LearnedModel, LearningFrontend};
use cv_isa::{Addr, BinaryImage, Word};
use cv_patch::{install_hooks, uninstall, CheckPatch, InvariantCounts, PatchHandle};
use cv_runtime::{
    EnvConfig, ExecutionStats, HookId, ManagedExecutionEnvironment, MonitorConfig, ObservationKind,
    RunResult, RunStatus,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Learn a model of normal behaviour by running the application on a learning suite.
///
/// Pages that complete normally are committed into the model; pages that fail or crash
/// are discarded (Section 3.1's rule that invariants from erroneous executions must be
/// excluded). Returns the learned model and the execution statistics of the traced runs
/// (the learning-overhead experiment compares these against untraced runs).
pub fn learn_model(
    image: &BinaryImage,
    pages: &[Vec<Word>],
    monitors: MonitorConfig,
) -> (LearnedModel, ExecutionStats) {
    let mut env =
        ManagedExecutionEnvironment::new(image.clone(), EnvConfig::with_monitors(monitors));
    let mut frontend = LearningFrontend::new(image.clone());
    for page in pages {
        let result = env.run_with_tracer(page, &mut frontend);
        if result.is_completed() {
            frontend.commit_run();
        } else {
            frontend.discard_run();
        }
    }
    (frontend.into_model(), env.cumulative_stats())
}

/// Converts execution statistics into simulated wall-clock seconds.
///
/// The paper's per-run times (Table 3) are dominated by warming up the code cache after
/// restarting Firefox; instruction execution and patch hooks contribute the rest. The
/// defaults are calibrated to land individual runs in the 15–60 second range the paper
/// reports, so the *breakdown shape* of Table 3 is reproduced.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimTimeModel {
    /// Fixed cost of restarting the application and warming up the environment.
    pub restart_base: f64,
    /// Seconds per basic block decoded into the code cache.
    pub per_block: f64,
    /// Seconds per guest instruction executed.
    pub per_instruction: f64,
    /// Seconds per patch-hook invocation (includes reporting observations).
    pub per_hook_invocation: f64,
}

impl Default for SimTimeModel {
    fn default() -> Self {
        SimTimeModel {
            restart_base: 16.0,
            per_block: 0.18,
            per_instruction: 2.0e-5,
            per_hook_invocation: 0.05,
        }
    }
}

impl SimTimeModel {
    /// Simulated seconds for one run.
    pub fn run_seconds(&self, stats: &ExecutionStats) -> f64 {
        self.restart_base
            + stats.blocks_built as f64 * self.per_block
            + stats.instructions as f64 * self.per_instruction
            + stats.hook_invocations as f64 * self.per_hook_invocation
    }
}

/// The per-failure time breakdown reproduced from Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttackTimeline {
    /// The failure location this timeline describes.
    pub failure_location: Addr,
    /// Time to replay the exploit to detection (the "Shadow Stack, Heap Guard Runs"
    /// column: the initial detection replays).
    pub detection_run_seconds: f64,
    /// Time to build the invariant-checking patches.
    pub check_build_seconds: f64,
    /// `[one-of, lower-bound, less-than]` counts of checked invariants.
    pub check_counts: InvariantCounts,
    /// Time to install the invariant-checking patches.
    pub check_install_seconds: f64,
    /// Time spent replaying the exploit with invariant checks in place.
    pub check_run_seconds: f64,
    /// Number of invariant-check executions observed during those replays.
    pub check_executions: u64,
    /// Number of those checks that reported a violation.
    pub check_violations: u64,
    /// Time to build the repair patches.
    pub repair_build_seconds: f64,
    /// `[one-of, lower-bound, less-than]` counts of correlated invariants repaired.
    pub repair_counts: InvariantCounts,
    /// Time to install repair patches.
    pub repair_install_seconds: f64,
    /// Time spent in runs where an applied repair did not succeed.
    pub unsuccessful_repair_seconds: f64,
    /// Number of unsuccessful repair runs.
    pub unsuccessful_repair_runs: u32,
    /// Time of the successful repair run (including the evaluation window).
    pub successful_repair_seconds: f64,
    /// Exploit presentations observed for this failure.
    pub presentations: u32,
}

impl AttackTimeline {
    fn new(failure_location: Addr) -> Self {
        AttackTimeline {
            failure_location,
            detection_run_seconds: 0.0,
            check_build_seconds: 0.0,
            check_counts: InvariantCounts::default(),
            check_install_seconds: 0.0,
            check_run_seconds: 0.0,
            check_executions: 0,
            check_violations: 0,
            repair_build_seconds: 0.0,
            repair_counts: InvariantCounts::default(),
            repair_install_seconds: 0.0,
            unsuccessful_repair_seconds: 0.0,
            unsuccessful_repair_runs: 0,
            successful_repair_seconds: 0.0,
            presentations: 0,
        }
    }

    /// Total simulated seconds from first detection to a successful patch.
    pub fn total_seconds(&self) -> f64 {
        self.detection_run_seconds
            + self.check_build_seconds
            + self.check_install_seconds
            + self.check_run_seconds
            + self.repair_build_seconds
            + self.repair_install_seconds
            + self.unsuccessful_repair_seconds
            + self.successful_repair_seconds
    }
}

/// Per-failure-location patch bookkeeping: what is installed on *this* machine for
/// the location, plus its Table 3 timeline. The decision state lives in the
/// [`ResponderShard`]; this is purely the local application side.
struct PatchSlot {
    checks: Vec<(Invariant, PatchHandle, HookId)>,
    repair: Option<PatchHandle>,
    timeline: AttackTimeline,
}

impl PatchSlot {
    fn new(timeline: AttackTimeline) -> Self {
        PatchSlot {
            checks: Vec::new(),
            repair: None,
            timeline,
        }
    }
}

/// The outcome of presenting one input to the protected application.
#[derive(Debug, Clone, PartialEq)]
pub struct PresentationOutcome {
    /// How the run ended.
    pub status: RunStatus,
    /// What the application rendered.
    pub rendered: Vec<Word>,
    /// Simulated seconds the run took.
    pub run_seconds: f64,
    /// True if this presentation was blocked by a monitor (a failure was detected).
    pub blocked: bool,
    /// Failure locations that became protected as a result of this presentation.
    pub newly_protected: Vec<Addr>,
}

/// One application instance protected by ClearView.
pub struct ProtectedApplication {
    env: ManagedExecutionEnvironment,
    model: LearnedModel,
    config: ClearViewConfig,
    sim: SimTimeModel,
    /// The degenerate manager plane: one shard owning every responder.
    router: DigestRouter,
    shard: ResponderShard,
    slots: BTreeMap<Addr, PatchSlot>,
    /// The net patch configuration installed on this machine — the durable state a
    /// checkpoint captures (see [`ProtectedApplication::checkpoint_plan`]).
    net: NetPatchState,
}

impl ProtectedApplication {
    /// Protect `image` using `model`, with the full Red Team monitor configuration.
    pub fn new(image: BinaryImage, model: LearnedModel, config: ClearViewConfig) -> Self {
        Self::with_monitors(image, model, config, MonitorConfig::full())
    }

    /// Protect `image` with an explicit monitor configuration (used by the ablation
    /// experiments).
    pub fn with_monitors(
        image: BinaryImage,
        model: LearnedModel,
        config: ClearViewConfig,
        monitors: MonitorConfig,
    ) -> Self {
        ProtectedApplication {
            env: ManagedExecutionEnvironment::new(image, EnvConfig::with_monitors(monitors)),
            model,
            config,
            sim: SimTimeModel::default(),
            router: DigestRouter::new(1),
            shard: ResponderShard::new(),
            slots: BTreeMap::new(),
            net: NetPatchState::new(),
        }
    }

    /// Warm-start an application from a previously checkpointed protection state:
    /// the learned `model` plus the net patch `plan` of a checkpoint
    /// ([`ProtectedApplication::checkpoint_plan`], typically decoded from a
    /// `cv-store` snapshot). Every validated repair is reinstalled and its responder
    /// adopted directly in [`Phase::Protected`] — zero learning replay, zero
    /// re-checking. In-flight checking patches are dropped: the next failure report
    /// at such a location simply restarts that response.
    pub fn restore(
        image: BinaryImage,
        model: LearnedModel,
        config: ClearViewConfig,
        monitors: MonitorConfig,
        plan: &PatchPlan,
    ) -> Self {
        let mut app = Self::with_monitors(image, model, config, monitors);
        let mut net = NetPatchState::new();
        net.apply(plan);
        for (loc, repair) in net.repairs() {
            let handle = install_hooks(&mut app.env, repair.build_hooks());
            let mut slot = PatchSlot::new(AttackTimeline::new(loc));
            slot.repair = Some(handle);
            app.slots.insert(loc, slot);
            app.shard.adopt(
                loc,
                FailureResponder::restored(loc, repair.clone(), config),
                [0],
            );
        }
        app.net.apply(&net.repair_plan());
        app
    }

    /// The minimal patch plan that brings a fresh instance to this one's installed
    /// configuration — the durable protection state a checkpoint captures.
    pub fn checkpoint_plan(&self) -> PatchPlan {
        self.net.to_plan()
    }

    /// The net patch configuration currently installed.
    pub fn net_state(&self) -> &NetPatchState {
        &self.net
    }

    /// The learned model in use.
    pub fn model(&self) -> &LearnedModel {
        &self.model
    }

    /// Replace the simulated-time model (used by benchmarks).
    pub fn set_sim_time_model(&mut self, sim: SimTimeModel) {
        self.sim = sim;
    }

    /// Failure locations ClearView has observed so far.
    pub fn failure_locations(&self) -> Vec<Addr> {
        self.shard.locations().collect()
    }

    /// True if a successful repair is in place for the failure at `location`.
    pub fn is_protected_against(&self, location: Addr) -> bool {
        self.shard
            .get(location)
            .map(|r| r.is_protected())
            .unwrap_or(false)
    }

    /// The response phase for the failure at `location`.
    pub fn phase_of(&self, location: Addr) -> Option<Phase> {
        self.shard.get(location).map(|r| r.phase())
    }

    /// The number of patches (hooks) currently applied to the running application.
    pub fn applied_hook_count(&self) -> usize {
        self.env.hook_count()
    }

    /// Maintainer-facing reports for every observed failure.
    pub fn reports(&self) -> Vec<RepairReport> {
        self.shard.responders().map(|(_, r)| r.report()).collect()
    }

    /// Table 3-style timelines for every observed failure.
    pub fn timelines(&self) -> Vec<AttackTimeline> {
        self.slots.values().map(|s| s.timeline).collect()
    }

    /// Present one input ("load one page") to the protected application.
    pub fn present(&mut self, input: &[Word]) -> PresentationOutcome {
        // Each presentation models a fresh application launch (the monitor terminated
        // the previous instance on failure), so the code cache starts cold — the
        // dominant per-run cost in the paper's Table 3.
        self.env.flush_cache();
        let result = self.env.run(input);
        let run_seconds = self.sim.run_seconds(&result.stats);
        let status = match &result.status {
            RunStatus::Completed => DigestStatus::Completed,
            RunStatus::Failure(f) => DigestStatus::FailureAt(f.location),
            RunStatus::Crash(_) => DigestStatus::Crashed,
        };

        let previously_protected: Vec<Addr> = self
            .shard
            .responders()
            .filter(|(_, r)| r.is_protected())
            .map(|(a, _)| a)
            .collect();

        // Attribute the run's time to every active response (the phase *during* the
        // run) and build its digest against the locally installed checking patches.
        let mut digests: Vec<RoutedDigest> = Vec::with_capacity(self.slots.len());
        for (loc, slot) in self.slots.iter_mut() {
            let responder = self.shard.get(*loc).expect("responder for slot");
            Self::attribute_time(slot, responder, status, run_seconds, &result, &self.config);
            digests.push(RoutedDigest {
                source: 0,
                location: *loc,
                digest: Self::build_digest(slot, &result, status),
            });
        }
        let failure_events = match &result.status {
            // A failure at a location ClearView has not seen before starts a new
            // response (the shard ignores reports at locations it already owns).
            RunStatus::Failure(failure) => vec![FailureEvent {
                source: 0,
                failure: failure.clone(),
            }],
            _ => Vec::new(),
        };

        // Drive the (single-shard) manager plane and apply its patch plan.
        let bucket = self
            .router
            .route(digests, failure_events)
            .pop()
            .expect("one bucket from one shard");
        let outcome = self.shard.process(bucket, &self.model, &self.config);
        for loc in &outcome.started {
            let mut timeline = AttackTimeline::new(*loc);
            timeline.detection_run_seconds += run_seconds;
            timeline.presentations += 1;
            self.slots.insert(*loc, PatchSlot::new(timeline));
        }
        self.apply_plan(&outcome.plan);

        let newly_protected: Vec<Addr> = self
            .shard
            .responders()
            .filter(|(a, r)| r.is_protected() && !previously_protected.contains(a))
            .map(|(a, _)| a)
            .collect();

        PresentationOutcome {
            blocked: matches!(result.status, RunStatus::Failure(_)),
            status: result.status,
            rendered: result.rendered,
            run_seconds,
            newly_protected,
        }
    }

    fn attribute_time(
        slot: &mut PatchSlot,
        responder: &FailureResponder,
        status: DigestStatus,
        run_seconds: f64,
        result: &RunResult,
        config: &ClearViewConfig,
    ) {
        let ours =
            matches!(status, DigestStatus::FailureAt(loc) if loc == responder.failure_location);
        if ours {
            slot.timeline.presentations += 1;
        }
        match responder.phase() {
            Phase::Checking if ours => {
                slot.timeline.check_run_seconds += run_seconds;
                let check_ids: Vec<HookId> = slot.checks.iter().map(|(_, _, id)| *id).collect();
                for obs in &result.observations {
                    if check_ids.contains(&obs.hook) {
                        slot.timeline.check_executions += 1;
                        if obs.kind == ObservationKind::Violated {
                            slot.timeline.check_violations += 1;
                        }
                    }
                }
            }
            Phase::Repairing => match status {
                DigestStatus::Completed => {
                    slot.timeline.successful_repair_seconds +=
                        run_seconds + config.success_observation_seconds;
                }
                DigestStatus::FailureAt(loc) if loc == responder.failure_location => {
                    slot.timeline.unsuccessful_repair_seconds += run_seconds;
                    slot.timeline.unsuccessful_repair_runs += 1;
                }
                DigestStatus::Crashed => {
                    slot.timeline.unsuccessful_repair_seconds += run_seconds;
                    slot.timeline.unsuccessful_repair_runs += 1;
                }
                DigestStatus::FailureAt(_) => {}
            },
            _ => {}
        }
    }

    fn build_digest(slot: &PatchSlot, result: &RunResult, status: DigestStatus) -> RunDigest {
        let mut digest = RunDigest::with_status(status);
        for (inv, _, check_hook) in &slot.checks {
            let seq: Vec<bool> = result
                .observations
                .iter()
                .filter(|o| o.hook == *check_hook)
                .map(|o| o.kind == ObservationKind::Satisfied)
                .collect();
            if !seq.is_empty() {
                digest.observations.insert(inv.clone(), seq);
            }
        }
        digest
    }

    /// Apply a manager patch plan to this application, with Table 3 time accounting.
    fn apply_plan(&mut self, plan: &PatchPlan) {
        self.net.apply(plan);
        for op in plan.ops() {
            let loc = op.location;
            let costs = self.config.patch_costs;
            let slot = match self.slots.get_mut(&loc) {
                Some(s) => s,
                None => continue,
            };
            match &op.directive {
                Directive::InstallChecks(checks) => {
                    let invariants: Vec<Invariant> =
                        checks.iter().map(|c| c.invariant.clone()).collect();
                    let counts = InvariantCounts::of(invariants.iter());
                    slot.timeline.check_counts = counts;
                    slot.timeline.check_build_seconds += costs.build_time(counts);
                    slot.timeline.check_install_seconds += costs.install_time(checks.len() as u32);
                    for check in checks {
                        let inv = check.invariant.clone();
                        let handle = install_hooks(&mut self.env, check.build_hooks());
                        let check_hook = *handle.hook_ids().last().expect("check hook present");
                        slot.checks.push((inv, handle, check_hook));
                    }
                }
                Directive::RemoveChecks => {
                    for (_, handle, _) in slot.checks.drain(..) {
                        let _ = uninstall(&mut self.env, &handle);
                    }
                }
                Directive::InstallRepair(repair) => {
                    if slot.timeline.repair_build_seconds == 0.0 {
                        // The paper builds the repair patches for every correlated
                        // invariant in one batch, then installs them one at a time.
                        let correlated: Vec<Invariant> = self
                            .shard
                            .get(loc)
                            .map(|responder| {
                                responder
                                    .classifications()
                                    .iter()
                                    .filter(|(_, c)| **c > crate::correlate::Correlation::Not)
                                    .map(|(i, _)| i.clone())
                                    .collect()
                            })
                            .unwrap_or_default();
                        let counts = InvariantCounts::of(correlated.iter());
                        slot.timeline.repair_counts = counts;
                        slot.timeline.repair_build_seconds += costs.build_time(counts);
                    }
                    slot.timeline.repair_install_seconds += costs.install_time(1);
                    let handle = install_hooks(&mut self.env, repair.build_hooks());
                    slot.repair = Some(handle);
                }
                Directive::RemoveRepair => {
                    if let Some(handle) = slot.repair.take() {
                        let _ = uninstall(&mut self.env, &handle);
                    }
                }
            }
        }
    }
}

// Unit and integration-style tests exercising the full pipeline live in
// `tests/pipeline.rs` of this crate (they need a vulnerable guest application).

/// Convenience: a CheckPatch list for a set of invariants (used by the community layer).
pub fn checks_for(invariants: &[Invariant]) -> Vec<CheckPatch> {
    invariants.iter().cloned().map(CheckPatch::new).collect()
}
