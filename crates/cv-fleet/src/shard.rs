//! The sharded invariant store.
//!
//! The central manager's `InvariantDatabase` is the write-hot structure of a learning
//! round: every member uploads its locally inferred invariants and all uploads must be
//! merged (Section 3.1 of the paper). A monolithic database serializes those merges.
//! [`ShardedInvariantStore`] partitions the database by check-address shard
//! ([`InvariantDatabase::shard_of`]): each shard owns a disjoint set of check
//! addresses, so N shard workers can merge the *same* sequence of uploads in parallel
//! — each restricted to its own addresses — without locks, and the fused result is
//! bit-identical to the sequential merge (`tests/shard_parity.rs` proves this against
//! the seed's `InvariantDatabase::merge`).
//!
//! The fan-out only pays when threads can actually overlap and the batch is large
//! enough to amortize the spawns *and* the per-shard re-scan of every upload: below
//! that, [`ShardedInvariantStore::merge_uploads`] falls back to an inline
//! single-scan merge ([`InvariantDatabase::merge_into_shards`]) with monolithic
//! cost — the fix for the `merge_sharded_parallel_seconds` regression recorded in
//! `BENCH_fleet.json` on single-core machines.
//!
//! **Dirty-epoch tracking.** The store is also where the persistence plane learns
//! what changed: every merge path reports the entries it actually modified (the
//! `_observed` merge primitives), and the store stamps them — per shard, per epoch
//! — into an embedded [`DirtyEpochs`] tracker. [`ShardedInvariantStore::dirty_since`]
//! then answers "what may differ from the epoch-B checkpoint?" in O(changed),
//! which is what lets `cv-store`'s `DeltaBuilder` cut deltas without materializing
//! a base snapshot. A store whose state was installed wholesale (warm restore,
//! model replacement) must call [`ShardedInvariantStore::reset_dirty`] with the
//! epoch the new state corresponds to; older bases then fall back to full diffs.

use cv_inference::{DirtyEpochs, DirtySet, InvariantDatabase};
use cv_isa::Addr;

/// Minimum invariants across an upload batch before a parallel merge spawns shard
/// threads. Below this, per-shard work is microseconds and the spawns (plus each
/// shard re-scanning every upload) cost more than they save — the same inline
/// threshold reasoning as the manager plane's `MIN_PARALLEL_MANAGER_EVENTS`.
const MIN_PARALLEL_MERGE_INVARIANTS: usize = 512;

/// A community invariant database partitioned by check-address shard.
#[derive(Debug, Clone)]
pub struct ShardedInvariantStore {
    shards: Vec<InvariantDatabase>,
    /// The dirty-epoch plane: which addresses each epoch's merges actually
    /// changed, per shard, plus procedure discoveries and plan-touched shards.
    dirty: DirtyEpochs,
    /// Upload batches merged via the parallel per-shard fan-out.
    parallel_merges: u64,
    /// Upload batches merged via the inline single-scan fallback.
    inline_merges: u64,
}

impl ShardedInvariantStore {
    /// An empty store with `shard_count` shards (at least 1). An empty store has
    /// trivially complete mutation history, so its dirty floor is epoch 0.
    pub fn new(shard_count: usize) -> Self {
        ShardedInvariantStore {
            shards: vec![InvariantDatabase::new(); shard_count.max(1)],
            dirty: DirtyEpochs::new(shard_count.max(1), 0),
            parallel_merges: 0,
            inline_merges: 0,
        }
    }

    /// Partition an existing database into a store. The database's mutation
    /// history is unknown, so the dirty floor starts at `u64::MAX` — no base can
    /// be answered incrementally until [`ShardedInvariantStore::reset_dirty`]
    /// declares which epoch this state corresponds to.
    pub fn from_database(db: InvariantDatabase, shard_count: usize) -> Self {
        ShardedInvariantStore {
            shards: db.split(shard_count.max(1)),
            dirty: DirtyEpochs::new(shard_count.max(1), u64::MAX),
            parallel_merges: 0,
            inline_merges: 0,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Worker threads a parallel merge would use: one per shard, capped at the
    /// machine's available parallelism. On a single-core machine this is 1 and every
    /// merge takes the inline fallback.
    pub fn worker_count(&self) -> usize {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        self.shards.len().min(cores)
    }

    /// `(parallel, inline)` upload-batch merge counts — which path
    /// [`ShardedInvariantStore::merge_uploads`] actually took.
    pub fn merge_counts(&self) -> (u64, u64) {
        (self.parallel_merges, self.inline_merges)
    }

    /// Total number of invariants across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// True if no invariants are stored.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    /// The individual shards (each holds only addresses it owns).
    pub fn shards(&self) -> &[InvariantDatabase] {
        &self.shards
    }

    /// The dirty-epoch tracker (what changed, per shard, per epoch).
    pub fn dirty(&self) -> &DirtyEpochs {
        &self.dirty
    }

    /// Advance the epoch subsequent mutations are stamped into.
    pub fn begin_epoch(&mut self, epoch: u64) {
        self.dirty.begin_epoch(epoch);
    }

    /// Restart dirty tracking with complete knowledge from `floor` on — the
    /// store's state was just installed wholesale and corresponds to the
    /// epoch-`floor` checkpoint (or, for a state no checkpoint equals, the first
    /// epoch after it).
    pub fn reset_dirty(&mut self, floor: u64) {
        self.dirty.reset(floor);
    }

    /// Stamp a procedure entry discovered in the current epoch (procedure
    /// discovery lives next to the invariants in snapshots, so its dirt is
    /// tracked here too).
    pub fn mark_proc(&mut self, entry: Addr) {
        self.dirty.mark_proc(entry);
    }

    /// Stamp the shards a patch plan's application touched in the current epoch
    /// (the configuration-change footprint reported in fleet metrics).
    pub fn mark_plan_shards(&mut self, shards: &[usize]) {
        for &shard in shards {
            self.dirty.mark_plan_shard(shard);
        }
    }

    /// Everything that may differ from the epoch-`base_epoch` checkpoint, or
    /// `None` when the base predates the tracker's floor (fall back to a
    /// materialized diff).
    pub fn dirty_since(&self, base_epoch: u64) -> Option<DirtySet> {
        self.dirty.dirty_since(base_epoch)
    }

    /// Merge member uploads into the store — one worker thread per shard when the
    /// fan-out can pay for itself, otherwise an inline single-scan merge.
    ///
    /// In the parallel path every shard scans every upload but merges only the
    /// invariants whose check address it owns; each upload's run counters are
    /// absorbed exactly once. Upload order is preserved per address, so the result
    /// equals merging the uploads sequentially into a monolithic database.
    ///
    /// The fan-out is skipped — falling back to the monolithic-cost inline merge —
    /// when [`ShardedInvariantStore::worker_count`] is 1 (threads cannot overlap) or
    /// the batch carries fewer than [`MIN_PARALLEL_MERGE_INVARIANTS`] invariants
    /// (spawns and the per-shard re-scan of every upload dominate). Both paths
    /// produce identical shards and stamp identical dirty sets.
    pub fn merge_uploads(&mut self, uploads: &[InvariantDatabase]) {
        let batch: usize = uploads.iter().map(|u| u.len()).sum();
        let fan_out = self.shards.len() > 1
            && self.worker_count() > 1
            && batch >= MIN_PARALLEL_MERGE_INVARIANTS;
        self.merge_uploads_inner(uploads, fan_out);
    }

    /// Single-threaded variant of [`ShardedInvariantStore::merge_uploads`] (the
    /// sequential baseline of the `fleet_scale` benchmark). Always takes the inline
    /// single-scan merge.
    pub fn merge_uploads_sequential(&mut self, uploads: &[InvariantDatabase]) {
        self.merge_uploads_inner(uploads, false);
    }

    fn merge_uploads_inner(&mut self, uploads: &[InvariantDatabase], parallel: bool) {
        if uploads.is_empty() {
            return;
        }
        let shard_count = self.shards.len();
        if parallel && shard_count > 1 {
            self.parallel_merges += 1;
            // Each worker returns the addresses its shard actually changed; the
            // dirty stamps land single-threaded after the scope so the tracker
            // needs no locking.
            let changed: Vec<Vec<Addr>> = std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter_mut()
                    .enumerate()
                    .map(|(index, shard)| {
                        scope.spawn(move || merge_one_shard(shard, index, shard_count, uploads))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard merge worker panicked"))
                    .collect()
            });
            for (shard, addrs) in changed.into_iter().enumerate() {
                for addr in addrs {
                    self.dirty.mark_in_shard(shard, addr);
                }
            }
        } else {
            // Monolithic fallback: each upload is scanned once, every address entry
            // routed straight to its owning shard — no per-shard re-scan, no spawns.
            self.inline_merges += 1;
            let dirty = &mut self.dirty;
            for upload in uploads {
                InvariantDatabase::merge_into_shards_observed(
                    &mut self.shards,
                    upload,
                    |shard, addr| dirty.mark_in_shard(shard, addr),
                );
            }
            for shard in &mut self.shards {
                shard.recount();
            }
        }
        for upload in uploads {
            self.shards[0].absorb_run_stats(&upload.stats);
        }
    }

    /// Fuse the shards into one monolithic database (the central manager's merged
    /// community model). Equal to the result of sequentially merging every upload the
    /// store has seen.
    pub fn snapshot(&self) -> InvariantDatabase {
        InvariantDatabase::fuse(self.shards.iter().cloned())
    }

    /// Force the threaded fan-out regardless of core count or batch size, so tests
    /// prove both paths identical even on single-core machines.
    #[cfg(test)]
    fn merge_uploads_forced_parallel(&mut self, uploads: &[InvariantDatabase]) {
        self.merge_uploads_inner(uploads, true);
    }
}

/// Merge every upload's invariants owned by shard `index` (the shared per-shard
/// implementation of both merge paths), returning the addresses the merges
/// actually changed (ascending, deduplicated — ready for dirty stamping).
fn merge_one_shard(
    shard: &mut InvariantDatabase,
    index: usize,
    shard_count: usize,
    uploads: &[InvariantDatabase],
) -> Vec<Addr> {
    let mut changed = std::collections::BTreeSet::new();
    for upload in uploads {
        shard.merge_filtered_observed(
            upload,
            |addr| InvariantDatabase::shard_of(addr, shard_count) == index,
            |addr| {
                changed.insert(addr);
            },
        );
    }
    shard.recount();
    changed.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_inference::{Invariant, Variable};
    use cv_isa::{Operand, Reg};

    fn upload(member: u32) -> InvariantDatabase {
        let mut db = InvariantDatabase::new();
        for k in 0u32..60 {
            let addr = 0x1000 + (k * 4) % 128;
            let var = Variable::read(addr, 0, Operand::Reg(Reg::Ecx));
            db.insert(Invariant::OneOf {
                var,
                values: [member + k, k % 4].into_iter().collect(),
            });
            db.insert(Invariant::LowerBound {
                var,
                min: (member as i32) - (k as i32),
            });
        }
        db.stats.events_processed = 1000 + member as u64;
        db.stats.runs_committed = 10 + member as u64;
        db.recount();
        db
    }

    #[test]
    fn parallel_merge_equals_sequential_monolithic_merge() {
        let uploads: Vec<_> = (0..8).map(upload).collect();

        let mut reference = InvariantDatabase::new();
        for up in &uploads {
            reference.merge(up);
        }

        for shard_count in [1, 2, 5, 16] {
            let mut store = ShardedInvariantStore::new(shard_count);
            store.merge_uploads(&uploads);
            assert_eq!(
                store.snapshot(),
                reference,
                "shard_count={shard_count} diverged from the sequential merge"
            );
            assert_eq!(store.len(), reference.len());

            // The threaded fan-out must agree with whatever path merge_uploads took
            // on this machine, even when forced on a single core — and stamp the
            // identical dirty set.
            let mut forced = ShardedInvariantStore::new(shard_count);
            forced.merge_uploads_forced_parallel(&uploads);
            assert_eq!(forced.snapshot(), reference);
            assert_eq!(
                forced.dirty_since(0),
                store.dirty_since(0),
                "both merge paths must stamp the same dirty set"
            );
        }
    }

    #[test]
    fn small_batches_take_the_inline_fallback() {
        // One upload is far below MIN_PARALLEL_MERGE_INVARIANTS, so even a
        // many-shard store on a many-core machine must merge inline.
        let mut small = InvariantDatabase::new();
        small.insert(Invariant::LowerBound {
            var: Variable::read(0x1000, 0, Operand::Reg(Reg::Ecx)),
            min: 1,
        });
        small.recount();
        let mut store = ShardedInvariantStore::new(8);
        store.merge_uploads(std::slice::from_ref(&small));
        assert_eq!(store.merge_counts(), (0, 1));
        assert_eq!(store.snapshot().len(), 1);

        // A single-shard store can never fan out either.
        let uploads: Vec<_> = (0..8).map(upload).collect();
        let mut store = ShardedInvariantStore::new(1);
        store.merge_uploads(&uploads);
        let (parallel, inline) = store.merge_counts();
        assert_eq!(parallel, 0);
        assert_eq!(inline, 1);
        assert!(store.worker_count() >= 1);
    }

    #[test]
    fn incremental_upload_batches_accumulate() {
        let uploads: Vec<_> = (0..6).map(upload).collect();
        let mut reference = InvariantDatabase::new();
        for up in &uploads {
            reference.merge(up);
        }

        let mut store = ShardedInvariantStore::new(4);
        store.merge_uploads(&uploads[..2]);
        store.merge_uploads(&uploads[2..]);
        assert_eq!(store.snapshot(), reference);
    }

    #[test]
    fn from_database_round_trips() {
        let mut db = InvariantDatabase::new();
        for up in (0..3).map(upload) {
            db.merge(&up);
        }
        let store = ShardedInvariantStore::from_database(db.clone(), 8);
        assert_eq!(store.shard_count(), 8);
        assert_eq!(store.snapshot(), db);
        // Unknown mutation history: no base can be answered incrementally until
        // reset_dirty declares an epoch.
        assert_eq!(store.dirty_since(0), None);
    }

    #[test]
    fn dirty_stamps_follow_epochs_and_resets() {
        let uploads: Vec<_> = (0..2).map(upload).collect();
        let mut store = ShardedInvariantStore::new(4);
        store.begin_epoch(1);
        store.merge_uploads(&uploads[..1]);
        store.begin_epoch(2);
        store.merge_uploads(&uploads[1..]);
        store.mark_proc(0x4_0000);
        store.mark_plan_shards(&[2, 0]);

        let since1 = store.dirty_since(1).unwrap();
        assert!(since1.dirty_addr_count() > 0);
        assert_eq!(since1.procs, vec![0x4_0000]);
        assert_eq!(since1.plan_shards, vec![0, 2]);
        // Epoch-2-only view: the second upload re-merges the same addresses with
        // new values, so stamps exist, but strictly fewer than the full history
        // only if epoch 1 touched addresses epoch 2 left alone — both views must
        // at least be supersets of nothing and subsets of the epoch-1 view.
        let since2 = store.dirty_since(2).unwrap();
        assert!(since2.dirty_addr_count() <= since1.dirty_addr_count());

        store.reset_dirty(9);
        assert_eq!(store.dirty_since(8), None);
        assert!(store.dirty_since(9).unwrap().is_clean());
    }
}
