//! The machine-readable run report.
//!
//! A [`Summary`] reduces one recorded stream to the numbers the paper's claims
//! are argued with: per-phase counts/totals/medians/p99 (exact, computed by
//! sorting the phase's span durations — the recorder's histograms are the
//! approximate live view, this is the precise post-hoc one), final counter
//! values, and per-failure-location repair [`Timeline`]s (first detection →
//! candidate generation → evaluation verdicts → plan push → fleet-wide
//! immunity).

use crate::recorder::{EventKind, TraceEvent};
use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

/// Aggregate statistics for one span name ("phase").
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStats {
    /// The span name (`"fleet.execution"`, `"store.delta_cut"`, …).
    pub name: String,
    /// Number of spans recorded under this name.
    pub count: u64,
    /// Sum of their durations.
    pub total: Duration,
    /// Exact median duration (nearest rank).
    pub median: Duration,
    /// Exact 99th-percentile duration (nearest rank).
    pub p99: Duration,
    /// Largest single duration.
    pub max: Duration,
}

/// One stage of a repair timeline: a `cat == "timeline"` instant.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEvent {
    /// Stage name (`"timeline.detected"`, `"timeline.protected"`, …).
    pub name: String,
    /// When it happened, relative to the recorder's time base.
    pub ts: Duration,
    /// The epoch it happened in, if the event was stamped with one.
    pub epoch: Option<u64>,
}

/// The life of one failure location, from first detection onward.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    /// The failure location (the faulting address the monitors flagged).
    pub location: u64,
    /// Its stages, in time order.
    pub events: Vec<TimelineEvent>,
}

impl Timeline {
    /// Time from the first to the last recorded stage — for a location that
    /// reaches `timeline.protected`, the detection-to-immunity latency.
    pub fn elapsed(&self) -> Duration {
        match (self.events.first(), self.events.last()) {
            (Some(first), Some(last)) => last.ts.saturating_sub(first.ts),
            _ => Duration::ZERO,
        }
    }
}

/// A reduced view of one recorded stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    /// Per-span-name statistics, sorted by name.
    pub phases: Vec<PhaseStats>,
    /// Final value of each counter, by name.
    pub counters: BTreeMap<String, u64>,
    /// Repair timelines, sorted by failure location.
    pub timelines: Vec<Timeline>,
}

fn nearest_rank(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

impl Summary {
    /// Reduce every event in the stream.
    pub fn build(events: &[TraceEvent]) -> Summary {
        Summary::reduce(events.iter())
    }

    /// Reduce only the events belonging to fleet `fleet_id`: events stamped with
    /// a different `"fleet"` argument are skipped, events with no stamp (the
    /// cv-store codecs, which run on behalf of whichever fleet called them) are
    /// kept.
    pub fn build_for_fleet(events: &[TraceEvent], fleet_id: u64) -> Summary {
        Summary::reduce(
            events
                .iter()
                .filter(|e| e.arg("fleet").is_none_or(|id| id == fleet_id)),
        )
    }

    fn reduce<'a>(events: impl Iterator<Item = &'a TraceEvent>) -> Summary {
        let mut durations: BTreeMap<&'static str, Vec<Duration>> = BTreeMap::new();
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        let mut timelines: BTreeMap<u64, Vec<TimelineEvent>> = BTreeMap::new();
        for event in events {
            match event.kind {
                EventKind::Span { dur_nanos } => {
                    durations
                        .entry(event.name)
                        .or_default()
                        .push(Duration::from_nanos(dur_nanos));
                }
                EventKind::Counter { value } => {
                    counters.insert(event.name.to_string(), value);
                }
                EventKind::Instant => {
                    if event.cat == "timeline" {
                        if let Some(location) = event.arg("location") {
                            timelines.entry(location).or_default().push(TimelineEvent {
                                name: event.name.to_string(),
                                ts: Duration::from_nanos(event.ts_nanos),
                                epoch: event.arg("epoch"),
                            });
                        }
                    }
                }
            }
        }
        let phases = durations
            .into_iter()
            .map(|(name, mut durs)| {
                durs.sort_unstable();
                PhaseStats {
                    name: name.to_string(),
                    count: durs.len() as u64,
                    total: durs.iter().sum(),
                    median: nearest_rank(&durs, 0.5),
                    p99: nearest_rank(&durs, 0.99),
                    max: *durs.last().expect("non-empty by construction"),
                }
            })
            .collect();
        let timelines = timelines
            .into_iter()
            .map(|(location, mut events)| {
                events.sort_by_key(|e| e.ts);
                Timeline { location, events }
            })
            .collect();
        Summary {
            phases,
            counters,
            timelines,
        }
    }

    /// The statistics for span name `name`, if any were recorded.
    pub fn phase(&self, name: &str) -> Option<&PhaseStats> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// Render as JSON: `{"phases": [...], "counters": {...}, "timelines": [...]}`
    /// with all durations in fractional milliseconds.
    pub fn to_json(&self) -> String {
        fn ms(d: Duration) -> f64 {
            d.as_secs_f64() * 1_000.0
        }
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"phases\": [\n");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"count\": {}, \"total_ms\": {:.3}, \"median_ms\": {:.3}, \"p99_ms\": {:.3}, \"max_ms\": {:.3}}}",
                p.name,
                p.count,
                ms(p.total),
                ms(p.median),
                ms(p.p99),
                ms(p.max)
            ));
        }
        out.push_str("\n  ],\n  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{name}\": {value}"));
        }
        if !self.counters.is_empty() {
            out.push('\n');
        }
        out.push_str("  },\n  \"timelines\": [\n");
        for (i, t) in self.timelines.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&format!(
                "    {{\"location\": {}, \"elapsed_ms\": {:.3}, \"events\": [",
                t.location,
                ms(t.elapsed())
            ));
            for (j, e) in t.events.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                match e.epoch {
                    Some(epoch) => out.push_str(&format!(
                        "{{\"name\": \"{}\", \"ts_ms\": {:.3}, \"epoch\": {epoch}}}",
                        e.name,
                        ms(e.ts)
                    )),
                    None => out.push_str(&format!(
                        "{{\"name\": \"{}\", \"ts_ms\": {:.3}}}",
                        e.name,
                        ms(e.ts)
                    )),
                }
            }
            out.push_str("]}");
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<28} {:>8} {:>12} {:>12} {:>12} {:>12}",
            "phase", "count", "total", "median", "p99", "max"
        )?;
        for p in &self.phases {
            writeln!(
                f,
                "{:<28} {:>8} {:>12} {:>12} {:>12} {:>12}",
                p.name,
                p.count,
                format!("{:.3?}", p.total),
                format!("{:.3?}", p.median),
                format!("{:.3?}", p.p99),
                format!("{:.3?}", p.max)
            )?;
        }
        for t in &self.timelines {
            writeln!(
                f,
                "location {:#x}: {} stage(s) over {:.3?}",
                t.location,
                t.events.len(),
                t.elapsed()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    fn span_event(name: &'static str, ts_ms: u64, dur_ms: u64, fleet: Option<u64>) -> TraceEvent {
        let mut args = Vec::new();
        if let Some(id) = fleet {
            args.push(("fleet", id));
        }
        TraceEvent {
            name,
            cat: "fleet",
            kind: EventKind::Span {
                dur_nanos: dur_ms * 1_000_000,
            },
            ts_nanos: ts_ms * 1_000_000,
            tid: 1,
            args,
        }
    }

    #[test]
    fn phase_quantiles_are_exact() {
        let events: Vec<TraceEvent> = (1..=100)
            .map(|i| span_event("fleet.execution", i, i, None))
            .collect();
        let summary = Summary::build(&events);
        let phase = summary.phase("fleet.execution").unwrap();
        assert_eq!(phase.count, 100);
        assert_eq!(phase.median, Duration::from_millis(50));
        assert_eq!(phase.p99, Duration::from_millis(99));
        assert_eq!(phase.max, Duration::from_millis(100));
        assert_eq!(phase.total, Duration::from_millis(5050));
    }

    #[test]
    fn fleet_filter_keeps_own_and_unstamped_events() {
        let events = vec![
            span_event("fleet.execution", 0, 10, Some(1)),
            span_event("fleet.execution", 1, 20, Some(2)),
            span_event("store.snapshot_encode", 2, 5, None),
        ];
        let summary = Summary::build_for_fleet(&events, 2);
        assert_eq!(summary.phase("fleet.execution").unwrap().count, 1);
        assert_eq!(
            summary.phase("fleet.execution").unwrap().max,
            Duration::from_millis(20)
        );
        assert!(summary.phase("store.snapshot_encode").is_some());
        let all = Summary::build(&events);
        assert_eq!(all.phase("fleet.execution").unwrap().count, 2);
    }

    #[test]
    fn counters_keep_final_value_and_timelines_order_stages() {
        let rec = Recorder::new();
        rec.set_enabled(true);
        rec.counter("fleet.pages", 100, &[]);
        rec.counter("fleet.pages", 400, &[]);
        rec.instant(
            "timeline.detected",
            "timeline",
            &[("location", 64), ("epoch", 3)],
        );
        rec.instant(
            "timeline.candidates",
            "timeline",
            &[("location", 64), ("epoch", 3)],
        );
        rec.instant(
            "timeline.protected",
            "timeline",
            &[("location", 64), ("epoch", 5)],
        );
        // A non-timeline instant with a location arg must not pollute timelines.
        rec.instant("churn.crash", "churn", &[("location", 64)]);
        let summary = Summary::build(&rec.events());
        assert_eq!(summary.counters.get("fleet.pages"), Some(&400));
        assert_eq!(summary.timelines.len(), 1);
        let timeline = &summary.timelines[0];
        assert_eq!(timeline.location, 64);
        let names: Vec<&str> = timeline.events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "timeline.detected",
                "timeline.candidates",
                "timeline.protected"
            ]
        );
        assert_eq!(timeline.events[2].epoch, Some(5));
        assert!(timeline.elapsed() >= Duration::ZERO);
    }

    #[test]
    fn json_export_has_the_three_sections() {
        let events = vec![span_event("fleet.execution", 0, 10, None)];
        let json = Summary::build(&events).to_json();
        assert!(json.contains("\"phases\""));
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"timelines\""));
        assert!(json.contains("\"fleet.execution\""));
        assert!(json.contains("\"total_ms\": 10.000"));
    }

    #[test]
    fn display_renders_a_table() {
        let events = vec![span_event("fleet.execution", 0, 10, None)];
        let text = Summary::build(&events).to_string();
        assert!(text.contains("phase"));
        assert!(text.contains("fleet.execution"));
    }
}
