//! The event-driven epoch engine.
//!
//! The classic [`EpochScheduler`](crate::EpochScheduler) gives every member its own
//! `ManagedExecutionEnvironment` — a private image copy, code cache, and hook
//! registry — which puts a hard memory ceiling of a few thousand members on the
//! fleet. This engine inverts the representation: the *program* is shared once per
//! fleet ([`SharedProgram`]: one image, one pre-decoded instruction index, one
//! pristine address space backing copy-on-write machines), and a member is only
//!
//! * a [`MemberSlot`] — the id of its *patch configuration* plus an alive flag
//!   (8 bytes), and
//! * its auxiliary-store cell values, held sparsely in a side table (most members
//!   never have any: only two-variable checks carry a cell, and only after the
//!   aux-store hook has actually executed).
//!
//! Patch configurations are interned in a [`ConfigTable`]: a config is the ordered
//! list of patch *units* (one check or repair patch each) installed on a member.
//! Every epoch-boundary plan push maps each live config to its successor once —
//! O(distinct lineages), not O(members). Workers materialize an environment per
//! *config* (not per member) on demand, loading and saving a member's cell values
//! around each presentation, so ten thousand homogeneous members share one
//! environment per worker.
//!
//! Observational parity with the classic scheduler is exact on every history the
//! responder protocol can produce, and is locked down by the `engine_parity`
//! proptest: byte-identical `RunRecord` streams (statuses, renders, digests) and
//! identical learning uploads. The one deliberate divergence: re-installing checks
//! or a repair over an existing installation *replaces* the old hooks here, where
//! the classic scheduler leaks them in the environment — a configuration the
//! responder protocol never produces (installs are always preceded by the matching
//! remove).

use crate::protocol::{NodeId, Presentation};
use crate::scheduler::RunRecord;
use cv_core::{DigestStatus, Directive, PatchPlan, RunDigest};
use cv_inference::{Invariant, LearnedModel, LearningFrontend};
use cv_isa::{Addr, BinaryImage, Word};
use cv_patch::{install_hooks, CheckPatch, RepairPatch};
use cv_runtime::{
    EnvConfig, HookId, ManagedExecutionEnvironment, MonitorConfig, ObservationKind, RunResult,
    RunStatus, SharedProgram,
};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Identifier of an interned patch configuration (index into the config table).
type ConfigId = u32;

/// Identifier of one installed patch unit. Unit ids are never reused, so a member's
/// persisted cell value can never leak into a re-installed check: removal and
/// re-installation of the same patch yields a fresh unit id whose cell starts empty,
/// exactly like the fresh `Arc` cell a classic re-install allocates.
type UnitId = u64;

/// The empty configuration (no patches installed). Always present at index 0.
const EMPTY_CONFIG: ConfigId = 0;

/// Epoch batches smaller than this run on the calling thread even when a worker
/// pool is configured: thread spawn and join overhead dwarfs the work itself.
const SMALL_EPOCH_INLINE: usize = 16;

/// One community member. The whole per-member cost of an idle or homogeneous
/// member is this slot; cell values live sparsely in [`EventEngine::aux`].
#[derive(Clone, Copy)]
struct MemberSlot {
    config: ConfigId,
    /// False while the member is down (crashed with state loss, not yet rejoined).
    alive: bool,
}

/// One installed patch: a check or repair patch at one failure location.
#[derive(Clone, PartialEq)]
struct Unit {
    id: UnitId,
    location: Addr,
    kind: UnitKind,
}

#[derive(Clone, PartialEq)]
enum UnitKind {
    Check(CheckPatch),
    Repair(RepairPatch),
}

/// An interned patch configuration: units in installation order. Installation
/// order is what the classic scheduler's hook registry preserves, and it is
/// observable (hooks at one address run in installation order, and a repair
/// hook's action can shadow later hooks), so it is part of config identity.
#[derive(Default, Clone, PartialEq)]
struct Config {
    units: Vec<Unit>,
}

/// The interning table of patch configurations.
struct ConfigTable {
    configs: Vec<Config>,
    next_unit: UnitId,
}

impl ConfigTable {
    fn new() -> Self {
        ConfigTable {
            configs: vec![Config::default()],
            next_unit: 0,
        }
    }

    fn units(&self, id: ConfigId) -> &[Unit] {
        &self.configs[id as usize].units
    }

    /// Apply `plan`'s operations to a unit list, burning fresh unit ids for every
    /// install — mirroring `apply_plan_to_members` of the classic scheduler.
    fn apply_ops(&mut self, units: &mut Vec<Unit>, plan: &PatchPlan) {
        for op in plan.ops() {
            let loc = op.location;
            match &op.directive {
                Directive::InstallChecks(checks) => {
                    units.retain(|u| !(u.location == loc && matches!(u.kind, UnitKind::Check(_))));
                    for check in checks {
                        units.push(Unit {
                            id: self.bump(),
                            location: loc,
                            kind: UnitKind::Check(check.clone()),
                        });
                    }
                }
                Directive::RemoveChecks => {
                    units.retain(|u| !(u.location == loc && matches!(u.kind, UnitKind::Check(_))));
                }
                Directive::InstallRepair(repair) => {
                    units.retain(|u| !(u.location == loc && matches!(u.kind, UnitKind::Repair(_))));
                    units.push(Unit {
                        id: self.bump(),
                        location: loc,
                        kind: UnitKind::Repair(repair.clone()),
                    });
                }
                Directive::RemoveRepair => {
                    units.retain(|u| !(u.location == loc && matches!(u.kind, UnitKind::Repair(_))));
                }
            }
        }
    }

    fn bump(&mut self) -> UnitId {
        let id = self.next_unit;
        self.next_unit += 1;
        id
    }

    /// The configuration a member on `from` holds after `plan` is pushed to it.
    /// Interning is *id-exact*: a push that installs patches always creates a new
    /// config (its units carry fresh cell identities), while a push that only
    /// removes can fold back onto an ancestor, and a no-op push returns `from`.
    fn successor(&mut self, from: ConfigId, plan: &PatchPlan) -> ConfigId {
        let mut units = self.configs[from as usize].units.clone();
        self.apply_ops(&mut units, plan);
        if let Some(id) = self.configs.iter().position(|c| c.units == units) {
            return id as ConfigId;
        }
        self.configs.push(Config { units });
        (self.configs.len() - 1) as ConfigId
    }

    /// The configuration of a member bootstrapped from scratch with `plan` — the
    /// `reset_and_apply` primitive. Interning here is by *shape* (locations and
    /// patches, ignoring unit ids): a resetting member carries no cell state, so it
    /// can share the config (and therefore the materialized environments) of the
    /// members that reached the same patch set incrementally.
    fn reset_config(&mut self, plan: &PatchPlan) -> ConfigId {
        let saved_next = self.next_unit;
        let mut units = Vec::new();
        self.apply_ops(&mut units, plan);
        if let Some(id) = self
            .configs
            .iter()
            .position(|c| same_shape(&c.units, &units))
        {
            self.next_unit = saved_next; // interned: no fresh identities escaped
            return id as ConfigId;
        }
        self.configs.push(Config { units });
        (self.configs.len() - 1) as ConfigId
    }
}

/// Equality of unit lists up to unit ids.
fn same_shape(a: &[Unit], b: &[Unit]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| x.location == y.location && x.kind == y.kind)
}

/// A worker's materialization of one config: a shared-program environment with the
/// config's hooks installed, the aux cells to load and save around each run, and
/// the per-location digest index (invariant and check-hook id, in install order —
/// mirroring the classic scheduler's `NodePatchState::checks`).
struct MaterializedConfig {
    env: ManagedExecutionEnvironment,
    cells: Vec<(UnitId, Arc<Mutex<Option<Word>>>)>,
    checks_by_loc: HashMap<Addr, Vec<(Invariant, HookId)>>,
}

/// Install `units` into `env`, returning the cells and digest index.
#[allow(clippy::type_complexity)]
fn install_units(
    env: &mut ManagedExecutionEnvironment,
    units: &[Unit],
) -> (
    Vec<(UnitId, Arc<Mutex<Option<Word>>>)>,
    HashMap<Addr, Vec<(Invariant, HookId)>>,
) {
    let mut cells = Vec::new();
    let mut checks_by_loc: HashMap<Addr, Vec<(Invariant, HookId)>> = HashMap::new();
    for unit in units {
        match &unit.kind {
            UnitKind::Check(check) => {
                let (hooks, cell) = check.build_hooks_cells();
                let handle = install_hooks(env, hooks);
                let hook = *handle.hook_ids().last().expect("check hook");
                if let Some(cell) = cell {
                    cells.push((unit.id, cell));
                }
                checks_by_loc
                    .entry(unit.location)
                    .or_default()
                    .push((check.invariant.clone(), hook));
            }
            UnitKind::Repair(repair) => {
                let (hooks, cell) = repair.build_hooks_cells();
                let _ = install_hooks(env, hooks);
                if let Some(cell) = cell {
                    cells.push((unit.id, cell));
                }
            }
        }
    }
    (cells, checks_by_loc)
}

fn materialize(
    program: &SharedProgram,
    monitors: MonitorConfig,
    units: &[Unit],
) -> MaterializedConfig {
    let mut env =
        ManagedExecutionEnvironment::with_shared(program, EnvConfig::with_monitors(monitors));
    let (cells, checks_by_loc) = install_units(&mut env, units);
    MaterializedConfig {
        env,
        cells,
        checks_by_loc,
    }
}

/// A member's saved aux-cell values, sparsely: only `Some` values are stored (an
/// absent unit id reads back as the `None` a fresh cell holds).
type AuxValues = Vec<(UnitId, Word)>;

/// One worker's epoch output: its run records plus the aux-cell values its
/// members wrote, to be saved back at the epoch boundary.
type WorkerOutput = (Vec<RunRecord>, Vec<(NodeId, AuxValues)>);

/// The event-driven epoch engine. Drop-in replacement for the classic
/// [`EpochScheduler`](crate::EpochScheduler) behind [`Fleet`](crate::Fleet).
pub struct EventEngine {
    program: SharedProgram,
    monitors: MonitorConfig,
    parallel: bool,
    worker_count: usize,
    /// Hardware parallelism; with one core the worker pool can only lose, so
    /// epochs run inline regardless of the configured worker count.
    cores: usize,
    node_count: usize,
    alive_count: usize,
    slots: Vec<MemberSlot>,
    /// Sparse per-member cell state; absent members (the overwhelming majority)
    /// cost nothing.
    aux: HashMap<NodeId, AuxValues>,
    table: ConfigTable,
    /// Per-worker materialized configs, kept warm across epochs and pruned when a
    /// plan push retires a config.
    scratch: Vec<HashMap<ConfigId, MaterializedConfig>>,
}

impl EventEngine {
    /// An engine for `node_count` members running `image`. The worker-count
    /// resolution matches the classic scheduler so `worker_count()` is identical
    /// for identical fleet configurations.
    pub(crate) fn new(
        image: &BinaryImage,
        monitors: MonitorConfig,
        node_count: usize,
        worker_count: usize,
        parallel: bool,
    ) -> Self {
        let node_count = node_count.max(1);
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let worker_count = if !parallel {
            1
        } else if worker_count == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        } else {
            worker_count
        }
        .clamp(1, node_count);
        EventEngine {
            program: SharedProgram::new(image.clone()),
            monitors,
            parallel,
            worker_count,
            cores,
            node_count,
            alive_count: node_count,
            slots: vec![
                MemberSlot {
                    config: EMPTY_CONFIG,
                    alive: true,
                };
                node_count
            ],
            aux: HashMap::new(),
            table: ConfigTable::new(),
            scratch: (0..worker_count).map(|_| HashMap::new()).collect(),
        }
    }

    /// Number of members (including down ones — member ids are never reused).
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of members currently up.
    pub fn alive_count(&self) -> usize {
        self.alive_count
    }

    /// True if `node` is up.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.slot(node).alive
    }

    /// Number of workers.
    pub fn worker_count(&self) -> usize {
        self.worker_count
    }

    fn slot(&self, node: NodeId) -> &MemberSlot {
        assert!(node < self.node_count, "unknown node {node}");
        &self.slots[node]
    }

    /// Take `node` down with total state loss: its configuration and cell values
    /// are discarded.
    pub(crate) fn crash(&mut self, node: NodeId) {
        assert!(self.slot(node).alive, "node {node} is already down");
        self.slots[node] = MemberSlot {
            config: EMPTY_CONFIG,
            alive: false,
        };
        self.aux.remove(&node);
        self.alive_count -= 1;
    }

    /// Bring a down member back up, patchless — the caller re-synchronizes it.
    pub(crate) fn rejoin(&mut self, node: NodeId) {
        assert!(!self.slot(node).alive, "node {node} is already up");
        self.slots[node].alive = true;
        self.alive_count += 1;
    }

    /// Add a brand-new member (no patches) and return its id.
    pub(crate) fn join(&mut self) -> NodeId {
        let id = self.node_count;
        self.slots.push(MemberSlot {
            config: EMPTY_CONFIG,
            alive: true,
        });
        self.node_count += 1;
        self.alive_count += 1;
        id
    }

    /// Reset one member to patchless and install `plan` on it — the bootstrap
    /// primitive.
    pub(crate) fn reset_and_apply(&mut self, node: NodeId, plan: &PatchPlan) {
        assert!(self.slot(node).alive, "node {node} is down");
        self.aux.remove(&node);
        self.slots[node].config = self.table.reset_config(plan);
    }

    /// Execute one epoch; see `EpochScheduler::run_epoch` for the contract. The
    /// record stream is byte-identical to the classic scheduler's.
    pub(crate) fn run_epoch(
        &mut self,
        presentations: &[Presentation],
        active: &[Addr],
    ) -> Vec<RunRecord> {
        let worker_count = self.worker_count;
        let mut jobs: Vec<Vec<(usize, &Presentation)>> =
            (0..worker_count).map(|_| Vec::new()).collect();
        for (seq, presentation) in presentations.iter().enumerate() {
            assert!(
                presentation.node < self.node_count,
                "unknown node {}",
                presentation.node
            );
            jobs[presentation.node % worker_count].push((seq, presentation));
        }

        let (program, monitors) = (&self.program, self.monitors);
        let (table, slots, aux) = (&self.table, &self.slots, &self.aux);
        let threaded = self.parallel
            && worker_count > 1
            && self.cores > 1
            && presentations.len() >= SMALL_EPOCH_INLINE;
        let outputs: Vec<WorkerOutput> = if threaded {
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .scratch
                    .iter_mut()
                    .zip(&jobs)
                    .map(|(scratch, batch)| {
                        scope.spawn(move || {
                            run_worker(program, monitors, table, slots, aux, scratch, batch, active)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker panicked"))
                    .collect()
            })
        } else {
            self.scratch
                .iter_mut()
                .zip(&jobs)
                .map(|(scratch, batch)| {
                    run_worker(program, monitors, table, slots, aux, scratch, batch, active)
                })
                .collect()
        };

        let mut records = Vec::with_capacity(presentations.len());
        for (worker_records, aux_updates) in outputs {
            records.extend(worker_records);
            for (node, vals) in aux_updates {
                if vals.is_empty() {
                    self.aux.remove(&node);
                } else {
                    self.aux.insert(node, vals);
                }
            }
        }
        records.sort_by_key(|r| r.seq);
        records
    }

    /// Apply a shard-merged patch plan to every up member: one successor-config
    /// computation per distinct live configuration, one `u32` store per member.
    pub(crate) fn apply_plan(&mut self, plan: &PatchPlan) {
        if plan.is_empty() {
            return;
        }
        let mut successors: HashMap<ConfigId, ConfigId> = HashMap::new();
        for i in 0..self.slots.len() {
            if !self.slots[i].alive {
                continue;
            }
            let from = self.slots[i].config;
            let to = match successors.get(&from) {
                Some(to) => *to,
                None => {
                    let to = self.table.successor(from, plan);
                    successors.insert(from, to);
                    to
                }
            };
            self.slots[i].config = to;
        }
        // Retire materializations of configs no member holds any more.
        let live: HashSet<ConfigId> = self.slots.iter().map(|s| s.config).collect();
        for scratch in &mut self.scratch {
            scratch.retain(|id, _| live.contains(id));
        }
    }

    /// Amortized parallel learning; see `EpochScheduler::learn` for the share
    /// assignment. Returns only members with a non-empty share — a pageless
    /// member's local model is empty and merging it is a no-op, so the fleet
    /// reconstructs its (empty) upload from the alive set.
    pub(crate) fn learn(
        &mut self,
        image: &BinaryImage,
        pages: &[Vec<Word>],
    ) -> Vec<(NodeId, LearnedModel)> {
        let node_count = self.node_count;
        let learners: Vec<NodeId> = (0..node_count.min(pages.len()))
            .filter(|n| self.slots[*n].alive)
            .collect();
        let (monitors, table, slots, aux) = (self.monitors, &self.table, &self.slots, &self.aux);
        let learn_one = |node: NodeId| -> (NodeId, LearnedModel, Option<AuxValues>) {
            let mut env =
                ManagedExecutionEnvironment::new(image.clone(), EnvConfig::with_monitors(monitors));
            let (cells, _) = install_units(&mut env, table.units(slots[node].config));
            load_cells(&cells, aux.get(&node));
            let mut frontend = LearningFrontend::new(image.clone());
            for page in pages.iter().skip(node).step_by(node_count) {
                let result = env.run_with_tracer(page, &mut frontend);
                if result.is_completed() {
                    frontend.commit_run();
                } else {
                    frontend.discard_run();
                }
            }
            let aux_out = (!cells.is_empty()).then(|| save_cells(&cells));
            (node, frontend.into_model(), aux_out)
        };

        let threaded =
            self.parallel && self.worker_count > 1 && self.cores > 1 && learners.len() > 1;
        let mut results: Vec<(NodeId, LearnedModel, Option<AuxValues>)> = if threaded {
            let mut buckets: Vec<Vec<NodeId>> =
                (0..self.worker_count).map(|_| Vec::new()).collect();
            for node in &learners {
                buckets[node % self.worker_count].push(*node);
            }
            std::thread::scope(|scope| {
                let handles: Vec<_> = buckets
                    .iter()
                    .map(|bucket| {
                        scope.spawn(|| bucket.iter().map(|n| learn_one(*n)).collect::<Vec<_>>())
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("worker panicked"))
                    .collect()
            })
        } else {
            learners.iter().map(|n| learn_one(*n)).collect()
        };
        results.sort_by_key(|(node, _, _)| *node);

        let mut locals = Vec::with_capacity(results.len());
        for (node, model, aux_out) in results {
            if let Some(vals) = aux_out {
                if vals.is_empty() {
                    self.aux.remove(&node);
                } else {
                    self.aux.insert(node, vals);
                }
            }
            locals.push((node, model));
        }
        locals
    }

    /// Bytes of state proportional to the member count: slots plus sparse cell
    /// values. This is the `bytes_per_member` numerator's member-scaled part.
    pub fn resident_state_bytes(&self) -> u64 {
        const MAP_ENTRY_OVERHEAD: usize = 48;
        let slots = self.slots.len() * std::mem::size_of::<MemberSlot>();
        let aux: usize = self
            .aux
            .values()
            .map(|v| MAP_ENTRY_OVERHEAD + v.len() * std::mem::size_of::<(UnitId, Word)>())
            .sum();
        (slots + aux) as u64
    }

    /// Bytes of state shared across all members (amortized per member in
    /// `bytes_per_member`): the shared program, the config table, and the
    /// per-worker materialized environments.
    pub fn shared_state_bytes(&self) -> u64 {
        // Estimates: a unit holds a patch (invariant, strategy) — call it 160 B;
        // a materialized env is hooks plus registry plus fixed overhead.
        const UNIT_BYTES: usize = 160;
        const ENV_FIXED_BYTES: usize = 512;
        const HOOK_BYTES: usize = 160;
        let table: usize = self
            .table
            .configs
            .iter()
            .map(|c| 32 + c.units.len() * UNIT_BYTES)
            .sum();
        let envs: usize = self
            .scratch
            .iter()
            .flat_map(|m| m.values())
            .map(|mat| {
                ENV_FIXED_BYTES
                    + mat.env.hook_count() * HOOK_BYTES
                    + mat.cells.len() * std::mem::size_of::<(UnitId, Word)>()
            })
            .sum();
        self.program.resident_bytes() as u64 + (table + envs) as u64
    }
}

/// Set each cell to the member's saved value (absent = `None`, a fresh cell).
fn load_cells(cells: &[(UnitId, Arc<Mutex<Option<Word>>>)], saved: Option<&AuxValues>) {
    for (uid, cell) in cells {
        *cell.lock() = saved.and_then(|vals| vals.iter().find(|(u, _)| u == uid).map(|(_, w)| *w));
    }
}

/// Read back the cell values a run left behind, sparsely.
fn save_cells(cells: &[(UnitId, Arc<Mutex<Option<Word>>>)]) -> AuxValues {
    cells
        .iter()
        .filter_map(|(uid, cell)| cell.lock().map(|w| (*uid, w)))
        .collect()
}

/// Run one worker's share of an epoch against its materialized configs.
#[allow(clippy::too_many_arguments)]
fn run_worker(
    program: &SharedProgram,
    monitors: MonitorConfig,
    table: &ConfigTable,
    slots: &[MemberSlot],
    aux: &HashMap<NodeId, AuxValues>,
    scratch: &mut HashMap<ConfigId, MaterializedConfig>,
    jobs: &[(usize, &Presentation)],
    active: &[Addr],
) -> (Vec<RunRecord>, Vec<(NodeId, AuxValues)>) {
    // In-epoch overlay: a member's second presentation in one epoch must see the
    // cell values its first left behind, not the stale pre-epoch snapshot.
    let mut local_aux: HashMap<NodeId, AuxValues> = HashMap::new();
    let records = jobs
        .iter()
        .map(|(seq, presentation)| {
            let node = presentation.node;
            let slot = &slots[node];
            assert!(slot.alive, "presentation scheduled for down member {node}");
            let mat = scratch
                .entry(slot.config)
                .or_insert_with(|| materialize(program, monitors, table.units(slot.config)));
            if !mat.cells.is_empty() {
                load_cells(&mat.cells, local_aux.get(&node).or_else(|| aux.get(&node)));
            }
            let result = mat.env.run(&presentation.page);
            if !mat.cells.is_empty() {
                local_aux.insert(node, save_cells(&mat.cells));
            }
            let status = match &result.status {
                RunStatus::Completed => DigestStatus::Completed,
                RunStatus::Failure(f) => DigestStatus::FailureAt(f.location),
                RunStatus::Crash(_) => DigestStatus::Crashed,
            };
            let digests = active
                .iter()
                .map(|loc| (*loc, build_digest(mat, *loc, &result, status)))
                .collect();
            RunRecord {
                seq: *seq,
                node,
                failure: result.failure().cloned(),
                status: result.status,
                rendered: result.rendered,
                digests,
            }
        })
        .collect();
    (records, local_aux.into_iter().collect())
}

/// Build the per-run digest for one failure location from the config's digest
/// index — the same construction as the classic scheduler's, keyed by invariant
/// and filtered by check-hook id.
fn build_digest(
    mat: &MaterializedConfig,
    loc: Addr,
    result: &RunResult,
    status: DigestStatus,
) -> RunDigest {
    let mut digest = RunDigest::with_status(status);
    if let Some(checks) = mat.checks_by_loc.get(&loc) {
        for (inv, check_hook) in checks {
            let seq: Vec<bool> = result
                .observations
                .iter()
                .filter(|o| o.hook == *check_hook)
                .map(|o| o.kind == ObservationKind::Satisfied)
                .collect();
            if !seq.is_empty() {
                digest.observations.insert(inv.clone(), seq);
            }
        }
    }
    digest
}
