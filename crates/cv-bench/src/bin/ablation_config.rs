//! Ablation of the design choices DESIGN.md calls out (Sections 2.4.1, 4.3.2, 4.4.4):
//! how many exploits ClearView can patch as the configuration varies — Heap Guard
//! on/off, call-stack search depth, and the same-basic-block restriction on
//! two-variable candidate invariants.

use cv_apps::{expanded_learning_suite, red_team_exploits, Browser};
use cv_bench::{print_table, run_single_variant, MAX_PRESENTATIONS};
use cv_core::{learn_model, ClearViewConfig};
use cv_inference::LearnedModel;
use cv_runtime::MonitorConfig;

fn patched_count(
    browser: &Browser,
    model: &LearnedModel,
    config: ClearViewConfig,
    monitors: MonitorConfig,
) -> (usize, usize) {
    let mut patched = 0;
    let mut detected = 0;
    for exploit in red_team_exploits(browser) {
        // Reuse the learned model; only the configuration varies.
        let mut app = cv_core::ProtectedApplication::with_monitors(
            browser.image.clone(),
            model.clone(),
            config,
            monitors,
        );
        let mut got_patch = false;
        let mut got_detection = false;
        for _ in 0..MAX_PRESENTATIONS {
            let out = app.present(exploit.page());
            match out.status {
                cv_runtime::RunStatus::Completed => {
                    // Only counts as a patch if a monitor detected the attack first;
                    // with Heap Guard disabled, some exploits silently corrupt the heap
                    // and the run "completes" without any response being possible.
                    got_patch = got_detection;
                    break;
                }
                cv_runtime::RunStatus::Failure(_) => got_detection = true,
                cv_runtime::RunStatus::Crash(_) => {}
            }
        }
        if got_patch {
            patched += 1;
        }
        if got_detection {
            detected += 1;
        }
    }
    (patched, detected)
}

fn main() {
    let _ = run_single_variant; // re-exported driver used by other binaries
    let browser = Browser::build();
    let (model, _) = learn_model(
        &browser.image,
        &expanded_learning_suite(),
        MonitorConfig::full(),
    );

    let no_two_var_restriction = ClearViewConfig {
        restrict_two_variable_to_failure_block: false,
        ..Default::default()
    };

    let configs: Vec<(&str, ClearViewConfig, MonitorConfig)> = vec![
        (
            "Red Team defaults (depth 1, HG on)",
            ClearViewConfig::default(),
            MonitorConfig::full(),
        ),
        (
            "Stack walk depth 2",
            ClearViewConfig::with_stack_walk(2),
            MonitorConfig::full(),
        ),
        (
            "Stack walk depth 3",
            ClearViewConfig::with_stack_walk(3),
            MonitorConfig::full(),
        ),
        (
            "Heap Guard disabled",
            ClearViewConfig::with_stack_walk(2),
            MonitorConfig::firewall_and_shadow_stack(),
        ),
        (
            "No same-block restriction on pair invariants",
            no_two_var_restriction,
            MonitorConfig::full(),
        ),
    ];

    let rows: Vec<Vec<String>> = configs
        .iter()
        .map(|(name, config, monitors)| {
            let (patched, detected) = patched_count(&browser, &model, *config, *monitors);
            vec![
                name.to_string(),
                format!("{detected}/10"),
                format!("{patched}/10"),
            ]
        })
        .collect();
    print_table(
        "Ablation — exploits detected and patched under configuration variants (expanded learning suite)",
        &["Configuration", "Detected", "Patched"],
        &rows,
    );
    println!(
        "\nExpected shape: the defaults patch 8/10 with the expanded suite (285595 needs the deeper\n\
         stack walk, 307259 is never patchable); disabling Heap Guard loses the heap-overflow\n\
         detections (285595, 325403, 307259 are no longer even detected)."
    );
}
