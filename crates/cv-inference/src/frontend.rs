//! The learning front end: consumes execution traces and infers invariants.
//!
//! This is the reproduction's Daikon: the front end receives per-instruction trace
//! records from the managed execution environment (the values of all operands read and
//! all addresses computed — Section 2.2.1), discovers procedures and their CFGs as
//! blocks execute (Section 2.2.3), and infers one-of, lower-bound, less-than, and
//! stack-pointer-offset invariants with the optimizations of Section 2.2.4
//! (equal-variable deduplication and pointer classification).
//!
//! Samples are buffered per run and only committed when the caller declares the run
//! normal ([`LearningFrontend::commit_run`]); erroneous runs are discarded
//! ([`LearningFrontend::discard_run`]), implementing the "discard any invariants from
//! executions with errors" rule of Section 3.1.

use crate::cfg::ProcedureDatabase;
use crate::database::{InvariantDatabase, LearningStats};
use crate::invariant::{Invariant, ONE_OF_LIMIT};
use crate::variable::Variable;
use cv_isa::{Addr, BinaryImage, Inst, Operand, Word};
use cv_runtime::{ExecEvent, Tracer};
use std::collections::{BTreeSet, HashMap};

/// Per-variable sample statistics.
#[derive(Debug, Clone)]
struct VarStats {
    count: u64,
    values: BTreeSet<Word>,
    overflowed: bool,
    min_signed: i32,
    nonpointer_evidence: bool,
}

impl VarStats {
    fn new() -> Self {
        VarStats {
            count: 0,
            values: BTreeSet::new(),
            overflowed: false,
            min_signed: i32::MAX,
            nonpointer_evidence: false,
        }
    }

    fn update(&mut self, value: Word) {
        self.count += 1;
        if !self.overflowed {
            self.values.insert(value);
            if self.values.len() > ONE_OF_LIMIT {
                self.overflowed = true;
                self.values.clear();
            }
        }
        let signed = value as i32;
        if signed < self.min_signed {
            self.min_signed = signed;
        }
        // Pointer classification heuristic from Section 2.2.4: a value that is negative
        // or between 1 and 100,000 is evidence that the variable is not a pointer.
        if signed < 0 || (1..=100_000).contains(&signed) {
            self.nonpointer_evidence = true;
        }
    }

    fn is_pointer(&self) -> bool {
        !self.nonpointer_evidence
    }
}

/// Per-pair sample statistics (for less-than and equal-variable detection).
#[derive(Debug, Clone, Copy)]
struct PairStats {
    count: u64,
    a_le_b: bool,
    b_le_a: bool,
    always_eq: bool,
}

impl PairStats {
    fn new() -> Self {
        PairStats {
            count: 0,
            a_le_b: true,
            b_le_a: true,
            always_eq: true,
        }
    }

    fn update(&mut self, va: Word, vb: Word) {
        self.count += 1;
        let (sa, sb) = (va as i32, vb as i32);
        if sa > sb {
            self.a_le_b = false;
        }
        if sb > sa {
            self.b_le_a = false;
        }
        if sa != sb {
            self.always_eq = false;
        }
    }
}

/// A complete learned model: the invariants plus the procedure CFGs they were inferred
/// over (the latter is needed for predominator queries during correlated-invariant
/// identification).
#[derive(Debug, Clone)]
pub struct LearnedModel {
    /// The inferred invariants.
    pub invariants: InvariantDatabase,
    /// The dynamically discovered procedures.
    pub procedures: ProcedureDatabase,
}

/// The Daikon-style learning front end. Implements [`Tracer`] so it can be handed
/// directly to [`cv_runtime::ManagedExecutionEnvironment::run_with_tracer`].
pub struct LearningFrontend {
    procedures: ProcedureDatabase,
    filter_procs: Option<BTreeSet<Addr>>,
    var_stats: HashMap<Variable, VarStats>,
    pair_stats: HashMap<(Variable, Variable), PairStats>,
    sp_offsets: HashMap<(Addr, Addr), BTreeSet<i32>>,
    pending: Vec<ExecEvent>,
    events_processed: u64,
    runs_committed: u64,
    runs_discarded: u64,
}

impl LearningFrontend {
    /// Create a front end for `image`.
    pub fn new(image: BinaryImage) -> Self {
        LearningFrontend {
            procedures: ProcedureDatabase::new(image),
            filter_procs: None,
            var_stats: HashMap::new(),
            pair_stats: HashMap::new(),
            sp_offsets: HashMap::new(),
            pending: Vec::new(),
            events_processed: 0,
            runs_committed: 0,
            runs_discarded: 0,
        }
    }

    /// Restrict tracing to the given procedure entries (amortized community learning:
    /// each member instruments only part of the application, Section 3.1). Instructions
    /// in procedures not yet discovered are still traced.
    pub fn restrict_to_procedures(&mut self, procs: impl IntoIterator<Item = Addr>) {
        self.filter_procs = Some(procs.into_iter().collect());
    }

    /// Remove any procedure restriction.
    pub fn trace_everything(&mut self) {
        self.filter_procs = None;
    }

    /// The discovered procedures.
    pub fn procedures(&self) -> &ProcedureDatabase {
        &self.procedures
    }

    /// Number of trace events committed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of buffered (not yet committed or discarded) events for the current run.
    pub fn pending_events(&self) -> usize {
        self.pending.len()
    }

    /// Commit the buffered run as a *normal* execution: its samples become part of the
    /// model.
    pub fn commit_run(&mut self) {
        let events = std::mem::take(&mut self.pending);
        let mut last_values: HashMap<Variable, Word> = HashMap::new();
        let mut call_stack: Vec<(Addr, Word)> = Vec::new();
        for event in &events {
            self.events_processed += 1;
            if call_stack.is_empty() {
                let proc = self
                    .procedures
                    .proc_of_inst(event.addr)
                    .unwrap_or(event.addr);
                call_stack.push((proc, event.sp));
            }
            if let Some(&(proc_entry, entry_sp)) = call_stack.last() {
                let offset = (entry_sp as i64 - event.sp as i64) as i32;
                self.sp_offsets
                    .entry((proc_entry, event.addr))
                    .or_default()
                    .insert(offset);
            }

            // Single-variable samples.
            let mut current_vars: Vec<(Variable, Word)> = Vec::new();
            for r in &event.reads {
                if matches!(r.operand, Operand::Imm(_)) {
                    continue;
                }
                let var = Variable::read(event.addr, r.slot, r.operand);
                self.var_stats
                    .entry(var)
                    .or_insert_with(VarStats::new)
                    .update(r.value);
                current_vars.push((var, r.value));
            }

            // Pairwise samples, restricted to variables within the same basic block
            // (the earlier instruction of a block trivially predominates the later one).
            if let Some(cfg) = self.procedures.proc_containing(event.addr) {
                if let Some(bstart) = cfg.block_of_inst(event.addr) {
                    let block = &cfg.blocks[&bstart];
                    if let Some(pos) = block.position_of(event.addr) {
                        for prior_inst in &block.insts[..pos] {
                            for (slot, op) in
                                prior_inst.inst.operands_read().into_iter().enumerate()
                            {
                                if matches!(op, Operand::Imm(_)) {
                                    continue;
                                }
                                let prior = Variable::read(prior_inst.addr, slot as u8, op);
                                if let Some(&pv) = last_values.get(&prior) {
                                    for &(cur, cv) in &current_vars {
                                        if prior == cur {
                                            continue;
                                        }
                                        update_pair(&mut self.pair_stats, prior, pv, cur, cv);
                                    }
                                }
                            }
                        }
                        for i in 0..current_vars.len() {
                            for j in (i + 1)..current_vars.len() {
                                let (va, a) = current_vars[i];
                                let (vb, bv) = current_vars[j];
                                update_pair(&mut self.pair_stats, va, a, vb, bv);
                            }
                        }
                    }
                }
            }

            for &(v, val) in &current_vars {
                last_values.insert(v, val);
            }

            // Track the call stack for stack-pointer-offset invariants.
            match event.inst {
                Inst::Call { target } => call_stack.push((target, event.sp.wrapping_sub(1))),
                Inst::CallIndirect { .. } => {
                    let target = event.reads.first().map(|r| r.value).unwrap_or(0);
                    call_stack.push((target, event.sp.wrapping_sub(1)));
                }
                Inst::Ret => {
                    call_stack.pop();
                }
                _ => {}
            }
        }
        self.runs_committed += 1;
    }

    /// Discard the buffered run (an erroneous execution must not contribute samples).
    pub fn discard_run(&mut self) {
        self.pending.clear();
        self.runs_discarded += 1;
    }

    /// True if the control-flow graph guarantees that `a` and `b` always hold the same
    /// value: both read the same register within one basic block, and no instruction in
    /// between (nor the earlier instruction itself) writes that register or calls out.
    ///
    /// The paper's deduplication (Section 2.2.4) is a CFG analysis, not an
    /// observation-based one: two variables that merely happened to be equal on the
    /// learning inputs must not be merged, or invariants that distinguish them (such as
    /// the pre- and post-truncation buffer sizes in exploit 325403) would be lost.
    fn statically_redundant(&self, a: &Variable, b: &Variable) -> bool {
        let (Some(Operand::Reg(ra)), Some(Operand::Reg(rb))) = (a.operand, b.operand) else {
            return false;
        };
        if ra != rb {
            return false;
        }
        let Some(cfg) = self.procedures.proc_containing(a.addr) else {
            return false;
        };
        let (Some(ba), Some(bb)) = (cfg.block_of_inst(a.addr), cfg.block_of_inst(b.addr)) else {
            return false;
        };
        if ba != bb {
            return false;
        }
        let block = &cfg.blocks[&ba];
        let (Some(pa), Some(pb)) = (block.position_of(a.addr), block.position_of(b.addr)) else {
            return false;
        };
        let (lo, hi) = if pa <= pb { (pa, pb) } else { (pb, pa) };
        block.insts[lo..hi]
            .iter()
            .all(|i| !i.inst.is_call() && !i.inst.writes_register(ra))
    }

    /// Infer the invariant database from every committed sample.
    pub fn infer(&self) -> InvariantDatabase {
        // Equal-variable deduplication: when the CFG guarantees two variables always
        // hold the same value, keep only the one from the earlier instruction
        // (Section 2.2.4). Variables read by indirect control transfers are exempt from
        // removal: the invariants at call sites admit the call-specific repairs of
        // Section 2.5.1 (skip the call, return from the enclosing procedure), so they
        // must stay attached to the call.
        let mut duplicates: BTreeSet<Variable> = BTreeSet::new();
        for ((a, b), st) in &self.pair_stats {
            if st.count > 0 && st.always_eq && self.statically_redundant(a, b) {
                let later = (*a).max(*b);
                let later_is_indirect_transfer = self
                    .procedures
                    .inst_at(later.addr)
                    .map(|i| i.inst.is_indirect_transfer())
                    .unwrap_or(false);
                if !later_is_indirect_transfer {
                    duplicates.insert(later);
                }
            }
        }

        let mut db = InvariantDatabase::new();
        let mut pointers = 0u64;
        // Iterate the hash-keyed statistics in sorted order so the per-address
        // invariant lists come out in one canonical order: downstream consumers
        // (candidate selection, repair tie-breaking, the fleet's byte-identical
        // manager-parity guarantee) all observe insertion order.
        let mut var_stats: Vec<(&Variable, &VarStats)> = self.var_stats.iter().collect();
        var_stats.sort_by_key(|(var, _)| **var);
        for (var, st) in var_stats {
            if st.count == 0 || duplicates.contains(var) {
                continue;
            }
            if st.is_pointer() {
                pointers += 1;
            }
            if !st.overflowed && !st.values.is_empty() {
                db.insert(Invariant::OneOf {
                    var: *var,
                    values: st.values.clone(),
                });
            }
            if !st.is_pointer() {
                db.insert(Invariant::LowerBound {
                    var: *var,
                    min: st.min_signed,
                });
            }
        }
        let mut pair_stats: Vec<(&(Variable, Variable), &PairStats)> =
            self.pair_stats.iter().collect();
        pair_stats.sort_by_key(|(pair, _)| **pair);
        for ((a, b), st) in pair_stats {
            if st.count == 0 || st.always_eq {
                continue;
            }
            if duplicates.contains(a) || duplicates.contains(b) {
                continue;
            }
            let a_pointer = self
                .var_stats
                .get(a)
                .map(|s| s.is_pointer())
                .unwrap_or(true);
            let b_pointer = self
                .var_stats
                .get(b)
                .map(|s| s.is_pointer())
                .unwrap_or(true);
            if a_pointer || b_pointer {
                continue;
            }
            if st.a_le_b {
                db.insert(Invariant::LessThan { a: *a, b: *b });
            } else if st.b_le_a {
                db.insert(Invariant::LessThan { a: *b, b: *a });
            }
        }
        let mut sp_offsets: Vec<(&(Addr, Addr), &BTreeSet<i32>)> = self.sp_offsets.iter().collect();
        sp_offsets.sort_by_key(|(key, _)| **key);
        for ((proc_entry, at), offsets) in sp_offsets {
            if offsets.len() == 1 {
                db.insert(Invariant::StackPointerOffset {
                    proc_entry: *proc_entry,
                    at: *at,
                    offset: *offsets.iter().next().expect("len checked"),
                });
            }
        }

        db.stats = LearningStats {
            events_processed: self.events_processed,
            runs_committed: self.runs_committed,
            runs_discarded: self.runs_discarded,
            variables_observed: self.var_stats.len() as u64,
            duplicates_removed: duplicates.len() as u64,
            pointers_classified: pointers,
            ..Default::default()
        };
        db.recount();
        db
    }

    /// Consume the front end, producing the learned model (invariants + procedures).
    pub fn into_model(self) -> LearnedModel {
        let invariants = self.infer();
        LearnedModel {
            invariants,
            procedures: self.procedures,
        }
    }
}

fn update_pair(
    map: &mut HashMap<(Variable, Variable), PairStats>,
    a_var: Variable,
    a_val: Word,
    b_var: Variable,
    b_val: Word,
) {
    // Canonical order: the "a" side is the earlier variable (by address, then slot).
    let (ka, va, kb, vb) = if a_var <= b_var {
        (a_var, a_val, b_var, b_val)
    } else {
        (b_var, b_val, a_var, a_val)
    };
    map.entry((ka, kb))
        .or_insert_with(PairStats::new)
        .update(va, vb);
}

impl Tracer for LearningFrontend {
    fn on_block_first_execution(&mut self, block_start: Addr) {
        self.procedures.observe_block(block_start);
    }

    fn on_inst(&mut self, event: &ExecEvent) {
        self.pending.push(event.clone());
    }

    fn wants_addr(&self, addr: Addr) -> bool {
        match &self.filter_procs {
            None => true,
            Some(filter) => match self.procedures.proc_of_inst(addr) {
                Some(proc) => filter.contains(&proc),
                None => true,
            },
        }
    }

    fn on_call(&mut self, _call_site: Addr, target: Addr) {
        self.procedures.observe_call_target(target);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_isa::{MemRef, Port, ProgramBuilder, Reg};
    use cv_runtime::{EnvConfig, ManagedExecutionEnvironment};

    /// A program with a virtual call through a small function-pointer table and a
    /// length-guarded copy, exercised with benign inputs.
    ///
    /// main:
    ///   eax  <- input (selector, 0 or 1)
    ///   ecx  <- input (length, >= 1 in benign pages)
    ///   ebx  <- vtable[selector]         ; one-of invariant target
    ///   call *ebx
    ///   copy [buffer], [source], ecx     ; lower-bound invariant target (1 <= ecx)
    ///   halt
    fn build_program() -> (
        cv_isa::BinaryImage,
        std::collections::BTreeMap<String, Addr>,
    ) {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        b.input(Reg::Eax, Port::Input);
        b.input(Reg::Ecx, Port::Input);
        let f0 = b.new_label("f0");
        let f1 = b.new_label("f1");
        // Virtual dispatch.
        let vtable = b.data_here();
        b.note_symbol("vtable", vtable);
        b.mov(
            Reg::Ebx,
            Operand::Mem(MemRef {
                base: None,
                index: Some(Reg::Eax),
                scale: 1,
                disp: vtable as i32,
            }),
        );
        let call_site = b.call_indirect(Reg::Ebx);
        b.note_symbol("call_site", call_site);
        // Guarded copy into a heap buffer.
        b.alloc(Reg::Edi, 16u32);
        b.alloc(Reg::Esi, 16u32);
        let copy_site = b.copy(Reg::Edi, Reg::Esi, Reg::Ecx);
        b.note_symbol("copy_site", copy_site);
        b.output(Reg::Eax, Port::Render);
        b.halt();
        b.bind(f0);
        b.output(100u32, Port::Render);
        b.ret();
        b.bind(f1);
        b.output(200u32, Port::Render);
        b.ret();
        b.set_entry(main);
        // Fill the vtable after binding the functions.
        let f0_addr = b.label_addr(f0).unwrap();
        let f1_addr = b.label_addr(f1).unwrap();
        b.note_symbol("f0", f0_addr);
        b.note_symbol("f1", f1_addr);
        b.data_code_ref(f0);
        b.data_code_ref(f1);
        b.build_with_symbols().unwrap()
    }

    fn learn(pages: &[Vec<u32>]) -> (LearningFrontend, std::collections::BTreeMap<String, Addr>) {
        let (image, syms) = build_program();
        let mut env = ManagedExecutionEnvironment::new(image.clone(), EnvConfig::default());
        let mut fe = LearningFrontend::new(image);
        for page in pages {
            let r = env.run_with_tracer(page, &mut fe);
            assert!(
                r.is_completed(),
                "learning page must complete: {:?}",
                r.status
            );
            fe.commit_run();
        }
        (fe, syms)
    }

    #[test]
    fn vtable_fixup_points_at_functions() {
        let (image, syms) = build_program();
        let vt = (syms["vtable"] - image.layout.data_base) as usize;
        assert_eq!(image.data[vt], syms["f0"]);
        assert_eq!(image.data[vt + 1], syms["f1"]);
    }

    #[test]
    fn one_of_invariant_learned_at_indirect_call() {
        let (fe, syms) = learn(&[vec![0, 3], vec![1, 5], vec![0, 2]]);
        let db = fe.infer();
        let invs = db.invariants_at(syms["call_site"]);
        let one_of = invs
            .iter()
            .find(|i| matches!(i, Invariant::OneOf { .. }))
            .expect("one-of at the virtual call site");
        match one_of {
            Invariant::OneOf { values, .. } => {
                assert!(values.contains(&syms["f0"]));
                assert!(values.contains(&syms["f1"]));
                assert_eq!(values.len(), 2);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn lower_bound_learned_on_copy_length() {
        let (fe, syms) = learn(&[vec![0, 3], vec![1, 5], vec![0, 2]]);
        let db = fe.infer();
        let invs = db.invariants_at(syms["copy_site"]);
        let lb = invs
            .iter()
            .filter_map(|i| match i {
                Invariant::LowerBound { var, min }
                    if var.operand == Some(Operand::Reg(Reg::Ecx)) =>
                {
                    Some(*min)
                }
                _ => None,
            })
            .next()
            .expect("lower bound on the copy length");
        assert_eq!(lb, 2, "smallest benign length observed");
    }

    #[test]
    fn function_pointers_are_classified_as_pointers() {
        let (fe, syms) = learn(&[vec![0, 3], vec![1, 5]]);
        let db = fe.infer();
        // No lower-bound invariant on the call-target variable: it is a pointer.
        let invs = db.invariants_at(syms["call_site"]);
        assert!(invs
            .iter()
            .all(|i| !matches!(i, Invariant::LowerBound { .. })));
        assert!(db.stats.pointers_classified > 0);
    }

    #[test]
    fn sp_offset_invariants_cover_procedure_bodies() {
        let (fe, syms) = learn(&[vec![0, 3]]);
        let db = fe.infer();
        // At the indirect call site, the stack pointer equals its value at main's entry.
        assert_eq!(db.sp_offset(syms["main"], syms["call_site"]), Some(0));
    }

    #[test]
    fn discarded_runs_do_not_contribute() {
        let (image, syms) = build_program();
        let mut env = ManagedExecutionEnvironment::new(image.clone(), EnvConfig::default());
        let mut fe = LearningFrontend::new(image);
        // A run with a smaller length would weaken the lower bound; discard it as if it
        // had been flagged erroneous.
        let r = env.run_with_tracer(&[0, 1], &mut fe);
        assert!(r.is_completed());
        fe.discard_run();
        let r = env.run_with_tracer(&[0, 4], &mut fe);
        assert!(r.is_completed());
        fe.commit_run();
        let db = fe.infer();
        let invs = db.invariants_at(syms["copy_site"]);
        let lb = invs.iter().find_map(|i| match i {
            Invariant::LowerBound { var, min } if var.operand == Some(Operand::Reg(Reg::Ecx)) => {
                Some(*min)
            }
            _ => None,
        });
        assert_eq!(lb, Some(4));
        assert_eq!(db.stats.runs_discarded, 1);
        assert_eq!(db.stats.runs_committed, 1);
    }

    #[test]
    fn procedure_restriction_limits_tracing() {
        let (image, syms) = build_program();
        let mut env = ManagedExecutionEnvironment::new(image.clone(), EnvConfig::default());
        let mut fe = LearningFrontend::new(image.clone());
        // First run discovers procedures (trace everything).
        env.run_with_tracer(&[0, 3], &mut fe);
        fe.commit_run();
        let full_events = fe.events_processed();
        // Now restrict to the helper f0 only and run again.
        fe.restrict_to_procedures([syms["f0"]]);
        env.run_with_tracer(&[0, 3], &mut fe);
        fe.commit_run();
        let delta = fe.events_processed() - full_events;
        assert!(
            delta < full_events,
            "restricted run traces fewer instructions ({delta} vs {full_events})"
        );
        assert!(delta >= 2, "the selected procedure is still traced");
    }

    #[test]
    fn model_includes_procedures_and_invariants() {
        let (fe, syms) = learn(&[vec![0, 3]]);
        let model = fe.into_model();
        assert!(model.procedures.proc(syms["main"]).is_some());
        assert!(model.procedures.proc(syms["f0"]).is_some());
        assert!(model.invariants.len() > 3);
        assert!(model.invariants.stats.total_invariants() as usize == model.invariants.len());
    }

    #[test]
    fn dedup_removes_statically_equal_variables() {
        // ecx is read at the cmp and again at the add with no intervening write: the
        // CFG guarantees both reads see the same value, so the later variable is
        // removed from the model.
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        b.input(Reg::Ecx, Port::Input);
        b.cmp(Reg::Ecx, 5u32);
        b.add(Reg::Eax, Reg::Ecx);
        b.output(Reg::Eax, Port::Render);
        b.halt();
        b.set_entry(main);
        let image = b.build().unwrap();
        let mut env = ManagedExecutionEnvironment::new(image.clone(), EnvConfig::default());
        let mut fe = LearningFrontend::new(image);
        for v in [5u32, 9, 12] {
            env.run_with_tracer(&[v], &mut fe);
            fe.commit_run();
        }
        let db = fe.infer();
        assert!(
            db.stats.duplicates_removed >= 1,
            "equal variables deduplicated"
        );
    }

    #[test]
    fn dedup_is_not_fooled_by_coincidental_equality() {
        // ebx = ecx & 0xFFFF: equal to ecx for all observed (small) inputs, but the CFG
        // does not guarantee it, so both variables keep their invariants.
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        b.input(Reg::Ecx, Port::Input);
        b.mov(Reg::Ebx, Reg::Ecx);
        b.and(Reg::Ebx, 0xFFFFu32);
        let use_site = b.add(Reg::Eax, Reg::Ebx);
        b.output(Reg::Eax, Port::Render);
        b.halt();
        b.set_entry(main);
        let image = b.build().unwrap();
        let mut env = ManagedExecutionEnvironment::new(image.clone(), EnvConfig::default());
        let mut fe = LearningFrontend::new(image);
        for v in [5u32, 9, 12, 44, 100, 3] {
            env.run_with_tracer(&[v], &mut fe);
            fe.commit_run();
        }
        let db = fe.infer();
        // The truncated value read at the add keeps its own lower-bound invariant.
        assert!(db
            .invariants_at(use_site)
            .iter()
            .any(|i| matches!(i, Invariant::LowerBound { .. })));
    }
}
