//! Robust multi-round statistics.
//!
//! Every benchmark metric is measured as a *set of rounds*, not a single
//! sample: the summary the rest of the plane works with is the median plus two
//! robust spread measures — MAD (median absolute deviation) and IQR
//! (interquartile range). Means and standard deviations are deliberately
//! absent: one GC pause, page-cache miss, or CI-runner noise burst in a
//! 5-round set would poison a mean, while the median and MAD ignore it. (This
//! is the SOPOT-review lesson: benchmarking with no repetitions and no error
//! bars eventually lies to you.)

use cv_obs::FixedHistogram;

/// Consistency constant turning a MAD into a standard-deviation-comparable
/// scale for normally distributed noise (`σ ≈ 1.4826 · MAD`). The gate's
/// `k·MAD` bands use the scaled value so `k` has its familiar "sigmas" feel.
pub const MAD_SCALE: f64 = 1.4826;

/// Exact nearest-rank quantile of an **already sorted** slice.
fn nearest_rank_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Exact median (nearest rank — for even counts this is the lower-middle
/// element, matching `cv-obs::Summary`'s convention so span-derived and
/// sample-derived medians are comparable).
pub fn median(samples: &[f64]) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    nearest_rank_sorted(&sorted, 0.5)
}

/// Median absolute deviation: `median(|x_i - median(x)|)`, unscaled.
pub fn mad(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let m = median(samples);
    let deviations: Vec<f64> = samples.iter().map(|x| (x - m).abs()).collect();
    median(&deviations)
}

/// Interquartile range: `q75 - q25` (nearest rank).
pub fn iqr(samples: &[f64]) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    nearest_rank_sorted(&sorted, 0.75) - nearest_rank_sorted(&sorted, 0.25)
}

/// The multi-round summary of one metric: median, extremes, robust spread, and
/// the raw samples themselves (kept so a later reader can recompute anything —
/// the history record is the artifact, not the console output).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricStats {
    /// Nearest-rank median of the samples.
    pub median: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median absolute deviation (unscaled; multiply by [`MAD_SCALE`] for a
    /// σ-comparable value).
    pub mad: f64,
    /// Interquartile range.
    pub iqr: f64,
    /// The raw per-round samples, in measurement order.
    pub samples: Vec<f64>,
}

impl MetricStats {
    /// Summarize a set of per-round samples. Panics on an empty set or a
    /// non-finite sample — a benchmark that measured nothing, or NaN/inf, must
    /// fail loudly at the source rather than seed the history with poison.
    pub fn from_samples(samples: &[f64]) -> MetricStats {
        assert!(
            !samples.is_empty(),
            "MetricStats requires at least one sample"
        );
        assert!(
            samples.iter().all(|s| s.is_finite()),
            "MetricStats requires finite samples, got {samples:?}"
        );
        MetricStats {
            median: median(samples),
            min: samples.iter().copied().fold(f64::INFINITY, f64::min),
            max: samples.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            mad: mad(samples),
            iqr: iqr(samples),
            samples: samples.to_vec(),
        }
    }

    /// Summarize a `cv-obs` latency histogram in **milliseconds** — the bridge
    /// that lands span-derived quantiles in the same record shape as
    /// sample-derived metrics. Quantiles are the histogram's (within 2× by
    /// bucket construction); min/max are the bucket floor / exact max; the
    /// spread fields are quantile-derived (`iqr = q75 − q25`, `mad ≈ iqr/2`).
    /// `samples` is empty: the histogram is O(1)-memory by design.
    pub fn from_histogram(histogram: &FixedHistogram) -> MetricStats {
        let ms = |d: std::time::Duration| d.as_secs_f64() * 1_000.0;
        let q25 = ms(histogram.quantile(0.25));
        let q75 = ms(histogram.quantile(0.75));
        MetricStats {
            median: ms(histogram.quantile(0.5)),
            min: ms(histogram.min_bound()),
            max: ms(histogram.max()),
            mad: (q75 - q25) / 2.0,
            iqr: q75 - q25,
            samples: Vec::new(),
        }
    }

    /// Number of rounds behind this summary (0 for histogram-derived stats,
    /// whose samples are not retained).
    pub fn rounds(&self) -> usize {
        self.samples.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn median_is_nearest_rank() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        // Even count: lower-middle element (nearest-rank), not the mean.
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.0);
        assert_eq!(median(&[5.0]), 5.0);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn mad_ignores_a_single_outlier() {
        // Flat series with one wild outlier: the median stays at the flat
        // value and the MAD stays zero — the robustness the gate builds on.
        let series = [100.0, 100.0, 100.0, 5000.0, 100.0];
        assert_eq!(median(&series), 100.0);
        assert_eq!(mad(&series), 0.0);
    }

    #[test]
    fn mad_and_iqr_measure_spread() {
        let series = [10.0, 12.0, 14.0, 16.0, 18.0];
        assert_eq!(median(&series), 14.0);
        assert_eq!(mad(&series), 2.0);
        assert_eq!(iqr(&series), 4.0);
    }

    #[test]
    fn from_samples_summarizes() {
        let stats = MetricStats::from_samples(&[3.0, 1.0, 2.0]);
        assert_eq!(stats.median, 2.0);
        assert_eq!(stats.min, 1.0);
        assert_eq!(stats.max, 3.0);
        assert_eq!(stats.rounds(), 3);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn from_samples_rejects_nan() {
        MetricStats::from_samples(&[1.0, f64::NAN]);
    }

    #[test]
    fn from_histogram_bridges_span_quantiles() {
        let mut h = FixedHistogram::new();
        for micros in [100u64, 200, 400, 800, 1600] {
            h.record(Duration::from_micros(micros));
        }
        let stats = MetricStats::from_histogram(&h);
        assert!(stats.median > 0.0);
        assert_eq!(stats.max, 1.6);
        assert!(stats.min <= stats.median && stats.median <= stats.max);
        assert_eq!(stats.rounds(), 0);
    }
}
