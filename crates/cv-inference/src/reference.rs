//! The straightforward reference implementation of the learning front end.
//!
//! This is the pre-optimization [`LearningFrontend`](crate::LearningFrontend),
//! retained verbatim as an executable specification: it buffers whole
//! [`ExecEvent`]s, keys every statistic by full [`Variable`] structs in `HashMap`s,
//! and re-derives the prior-in-block operands from the CFG on every event. It is
//! deliberately simple and deliberately slow — the interned/columnar front end must
//! produce an [`InvariantDatabase`] **equal** to this one on every input, which the
//! proptest parity suite (`tests/parity.rs`) and the `learning_overhead` benchmark
//! both enforce. Do not optimize this type; optimize `LearningFrontend` against it.

use crate::cfg::ProcedureDatabase;
use crate::database::{InvariantDatabase, LearningStats};
use crate::invariant::{Invariant, ONE_OF_LIMIT};
use crate::variable::Variable;
use cv_isa::{Addr, BinaryImage, Inst, Operand, Word};
use cv_runtime::{ExecEvent, Tracer};
use std::collections::{BTreeSet, HashMap};

/// Per-variable sample statistics.
#[derive(Debug, Clone)]
struct VarStats {
    count: u64,
    values: BTreeSet<Word>,
    overflowed: bool,
    min_signed: i32,
    nonpointer_evidence: bool,
}

impl VarStats {
    fn new() -> Self {
        VarStats {
            count: 0,
            values: BTreeSet::new(),
            overflowed: false,
            min_signed: i32::MAX,
            nonpointer_evidence: false,
        }
    }

    fn update(&mut self, value: Word) {
        self.count += 1;
        if !self.overflowed {
            self.values.insert(value);
            if self.values.len() > ONE_OF_LIMIT {
                self.overflowed = true;
                self.values.clear();
            }
        }
        let signed = value as i32;
        if signed < self.min_signed {
            self.min_signed = signed;
        }
        // Pointer classification heuristic from Section 2.2.4: a value that is negative
        // or between 1 and 100,000 is evidence that the variable is not a pointer.
        if signed < 0 || (1..=100_000).contains(&signed) {
            self.nonpointer_evidence = true;
        }
    }

    fn is_pointer(&self) -> bool {
        !self.nonpointer_evidence
    }
}

/// Per-pair sample statistics (for less-than and equal-variable detection).
#[derive(Debug, Clone, Copy)]
struct PairStats {
    count: u64,
    a_le_b: bool,
    b_le_a: bool,
    always_eq: bool,
}

impl PairStats {
    fn new() -> Self {
        PairStats {
            count: 0,
            a_le_b: true,
            b_le_a: true,
            always_eq: true,
        }
    }

    fn update(&mut self, va: Word, vb: Word) {
        self.count += 1;
        let (sa, sb) = (va as i32, vb as i32);
        if sa > sb {
            self.a_le_b = false;
        }
        if sb > sa {
            self.b_le_a = false;
        }
        if sa != sb {
            self.always_eq = false;
        }
    }
}

/// The reference (unoptimized) Daikon-style learning front end. Implements
/// [`Tracer`]; behaviourally identical to [`crate::LearningFrontend`].
pub struct ReferenceFrontend {
    procedures: ProcedureDatabase,
    filter_procs: Option<BTreeSet<Addr>>,
    var_stats: HashMap<Variable, VarStats>,
    pair_stats: HashMap<(Variable, Variable), PairStats>,
    sp_offsets: HashMap<(Addr, Addr), BTreeSet<i32>>,
    pending: Vec<ExecEvent>,
    events_processed: u64,
    runs_committed: u64,
    runs_discarded: u64,
}

impl ReferenceFrontend {
    /// Create a reference front end for `image`.
    pub fn new(image: BinaryImage) -> Self {
        ReferenceFrontend {
            procedures: ProcedureDatabase::new(image),
            filter_procs: None,
            var_stats: HashMap::new(),
            pair_stats: HashMap::new(),
            sp_offsets: HashMap::new(),
            pending: Vec::new(),
            events_processed: 0,
            runs_committed: 0,
            runs_discarded: 0,
        }
    }

    /// Restrict tracing to the given procedure entries.
    pub fn restrict_to_procedures(&mut self, procs: impl IntoIterator<Item = Addr>) {
        self.filter_procs = Some(procs.into_iter().collect());
    }

    /// The discovered procedures.
    pub fn procedures(&self) -> &ProcedureDatabase {
        &self.procedures
    }

    /// Number of trace events committed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of buffered (not yet committed or discarded) events.
    pub fn pending_events(&self) -> usize {
        self.pending.len()
    }

    /// Commit the buffered run as a *normal* execution.
    pub fn commit_run(&mut self) {
        let events = std::mem::take(&mut self.pending);
        let mut last_values: HashMap<Variable, Word> = HashMap::new();
        let mut call_stack: Vec<(Addr, Word)> = Vec::new();
        for event in &events {
            self.events_processed += 1;
            if call_stack.is_empty() {
                let proc = self
                    .procedures
                    .proc_of_inst(event.addr)
                    .unwrap_or(event.addr);
                call_stack.push((proc, event.sp));
            }
            if let Some(&(proc_entry, entry_sp)) = call_stack.last() {
                let offset = (entry_sp as i64 - event.sp as i64) as i32;
                self.sp_offsets
                    .entry((proc_entry, event.addr))
                    .or_default()
                    .insert(offset);
            }

            // Single-variable samples.
            let mut current_vars: Vec<(Variable, Word)> = Vec::new();
            for r in &event.reads {
                if matches!(r.operand, Operand::Imm(_)) {
                    continue;
                }
                let var = Variable::read(event.addr, r.slot, r.operand);
                self.var_stats
                    .entry(var)
                    .or_insert_with(VarStats::new)
                    .update(r.value);
                current_vars.push((var, r.value));
            }

            // Pairwise samples, restricted to variables within the same basic block
            // (the earlier instruction of a block trivially predominates the later one).
            if let Some(cfg) = self.procedures.proc_containing(event.addr) {
                if let Some(bstart) = cfg.block_of_inst(event.addr) {
                    let block = &cfg.blocks[&bstart];
                    if let Some(pos) = block.position_of(event.addr) {
                        for prior_inst in &block.insts[..pos] {
                            for (slot, op) in
                                prior_inst.inst.operands_read().into_iter().enumerate()
                            {
                                if matches!(op, Operand::Imm(_)) {
                                    continue;
                                }
                                let prior = Variable::read(prior_inst.addr, slot as u8, op);
                                if let Some(&pv) = last_values.get(&prior) {
                                    for &(cur, cv) in &current_vars {
                                        if prior == cur {
                                            continue;
                                        }
                                        update_pair(&mut self.pair_stats, prior, pv, cur, cv);
                                    }
                                }
                            }
                        }
                        for i in 0..current_vars.len() {
                            for j in (i + 1)..current_vars.len() {
                                let (va, a) = current_vars[i];
                                let (vb, bv) = current_vars[j];
                                update_pair(&mut self.pair_stats, va, a, vb, bv);
                            }
                        }
                    }
                }
            }

            for &(v, val) in &current_vars {
                last_values.insert(v, val);
            }

            // Track the call stack for stack-pointer-offset invariants.
            match event.inst {
                Inst::Call { target } => call_stack.push((target, event.sp.wrapping_sub(1))),
                Inst::CallIndirect { .. } => {
                    let target = event.reads.first().map(|r| r.value).unwrap_or(0);
                    call_stack.push((target, event.sp.wrapping_sub(1)));
                }
                Inst::Ret => {
                    call_stack.pop();
                }
                _ => {}
            }
        }
        self.runs_committed += 1;
    }

    /// Discard the buffered run.
    pub fn discard_run(&mut self) {
        self.pending.clear();
        self.runs_discarded += 1;
    }

    /// True if the control-flow graph guarantees that `a` and `b` always hold the same
    /// value (see `LearningFrontend::statically_redundant`).
    fn statically_redundant(&self, a: &Variable, b: &Variable) -> bool {
        let (Some(Operand::Reg(ra)), Some(Operand::Reg(rb))) = (a.operand, b.operand) else {
            return false;
        };
        if ra != rb {
            return false;
        }
        let Some(cfg) = self.procedures.proc_containing(a.addr) else {
            return false;
        };
        let (Some(ba), Some(bb)) = (cfg.block_of_inst(a.addr), cfg.block_of_inst(b.addr)) else {
            return false;
        };
        if ba != bb {
            return false;
        }
        let block = &cfg.blocks[&ba];
        let (Some(pa), Some(pb)) = (block.position_of(a.addr), block.position_of(b.addr)) else {
            return false;
        };
        let (lo, hi) = if pa <= pb { (pa, pb) } else { (pb, pa) };
        block.insts[lo..hi]
            .iter()
            .all(|i| !i.inst.is_call() && !i.inst.writes_register(ra))
    }

    /// Infer the invariant database from every committed sample.
    pub fn infer(&self) -> InvariantDatabase {
        let mut duplicates: BTreeSet<Variable> = BTreeSet::new();
        for ((a, b), st) in &self.pair_stats {
            if st.count > 0 && st.always_eq && self.statically_redundant(a, b) {
                let later = (*a).max(*b);
                let later_is_indirect_transfer = self
                    .procedures
                    .inst_at(later.addr)
                    .map(|i| i.inst.is_indirect_transfer())
                    .unwrap_or(false);
                if !later_is_indirect_transfer {
                    duplicates.insert(later);
                }
            }
        }

        let mut db = InvariantDatabase::new();
        let mut pointers = 0u64;
        let mut var_stats: Vec<(&Variable, &VarStats)> = self.var_stats.iter().collect();
        var_stats.sort_by_key(|(var, _)| **var);
        for (var, st) in var_stats {
            if st.count == 0 || duplicates.contains(var) {
                continue;
            }
            if st.is_pointer() {
                pointers += 1;
            }
            if !st.overflowed && !st.values.is_empty() {
                db.insert(Invariant::OneOf {
                    var: *var,
                    values: st.values.clone(),
                });
            }
            if !st.is_pointer() {
                db.insert(Invariant::LowerBound {
                    var: *var,
                    min: st.min_signed,
                });
            }
        }
        let mut pair_stats: Vec<(&(Variable, Variable), &PairStats)> =
            self.pair_stats.iter().collect();
        pair_stats.sort_by_key(|(pair, _)| **pair);
        for ((a, b), st) in pair_stats {
            if st.count == 0 || st.always_eq {
                continue;
            }
            if duplicates.contains(a) || duplicates.contains(b) {
                continue;
            }
            let a_pointer = self
                .var_stats
                .get(a)
                .map(|s| s.is_pointer())
                .unwrap_or(true);
            let b_pointer = self
                .var_stats
                .get(b)
                .map(|s| s.is_pointer())
                .unwrap_or(true);
            if a_pointer || b_pointer {
                continue;
            }
            if st.a_le_b {
                db.insert(Invariant::LessThan { a: *a, b: *b });
            } else if st.b_le_a {
                db.insert(Invariant::LessThan { a: *b, b: *a });
            }
        }
        let mut sp_offsets: Vec<(&(Addr, Addr), &BTreeSet<i32>)> = self.sp_offsets.iter().collect();
        sp_offsets.sort_by_key(|(key, _)| **key);
        for ((proc_entry, at), offsets) in sp_offsets {
            if offsets.len() == 1 {
                db.insert(Invariant::StackPointerOffset {
                    proc_entry: *proc_entry,
                    at: *at,
                    offset: *offsets.iter().next().expect("len checked"),
                });
            }
        }

        db.stats = LearningStats {
            events_processed: self.events_processed,
            runs_committed: self.runs_committed,
            runs_discarded: self.runs_discarded,
            variables_observed: self.var_stats.len() as u64,
            duplicates_removed: duplicates.len() as u64,
            pointers_classified: pointers,
            ..Default::default()
        };
        db.recount();
        db
    }
}

fn update_pair(
    map: &mut HashMap<(Variable, Variable), PairStats>,
    a_var: Variable,
    a_val: Word,
    b_var: Variable,
    b_val: Word,
) {
    // Canonical order: the "a" side is the earlier variable (by address, then slot).
    let (ka, va, kb, vb) = if a_var <= b_var {
        (a_var, a_val, b_var, b_val)
    } else {
        (b_var, b_val, a_var, a_val)
    };
    map.entry((ka, kb))
        .or_insert_with(PairStats::new)
        .update(va, vb);
}

impl Tracer for ReferenceFrontend {
    fn on_block_first_execution(&mut self, block_start: Addr) {
        self.procedures.observe_block(block_start);
    }

    fn on_inst(&mut self, event: &ExecEvent) {
        self.pending.push(event.clone());
    }

    fn wants_addr(&self, addr: Addr) -> bool {
        match &self.filter_procs {
            None => true,
            Some(filter) => match self.procedures.proc_of_inst(addr) {
                Some(proc) => filter.contains(&proc),
                None => true,
            },
        }
    }

    fn on_call(&mut self, _call_site: Addr, target: Addr) {
        self.procedures.observe_call_target(target);
    }
}
