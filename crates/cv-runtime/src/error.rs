//! Error and crash classification for the managed execution environment.

use cv_isa::Addr;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Reasons a guest execution can *crash* (terminate abnormally without a monitor
/// detecting a failure).
///
/// The paper distinguishes *failures* (errors detected by a ClearView monitor) from
/// *crashes* (other terminations). Crashes matter to repair evaluation: a patched run
/// that crashes counts against the patch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CrashKind {
    /// A read or write touched an unmapped address.
    UnmappedAccess {
        /// The faulting address.
        addr: Addr,
    },
    /// A write targeted the code segment.
    CodeWrite {
        /// The faulting address.
        addr: Addr,
    },
    /// The stack pointer left the stack segment during a push/pop/call/ret.
    StackFault {
        /// The faulting stack pointer value.
        sp: Addr,
    },
    /// The instruction pointer left the loaded code image without the Memory Firewall
    /// enabled to catch it.
    WildJump {
        /// The bogus target address.
        target: Addr,
    },
    /// An undecodable instruction was fetched.
    InvalidInstruction {
        /// The address of the invalid instruction word.
        addr: Addr,
    },
    /// The run exceeded its instruction budget (runaway loop guard).
    InstructionBudgetExhausted,
    /// The guest freed an address that is not a live allocation.
    InvalidFree {
        /// The bogus pointer.
        addr: Addr,
    },
    /// The guest heap is exhausted.
    OutOfMemory,
}

impl fmt::Display for CrashKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrashKind::UnmappedAccess { addr } => write!(f, "unmapped access at 0x{addr:x}"),
            CrashKind::CodeWrite { addr } => write!(f, "write to code segment at 0x{addr:x}"),
            CrashKind::StackFault { sp } => write!(f, "stack fault, sp=0x{sp:x}"),
            CrashKind::WildJump { target } => write!(f, "wild jump to 0x{target:x}"),
            CrashKind::InvalidInstruction { addr } => {
                write!(f, "invalid instruction at 0x{addr:x}")
            }
            CrashKind::InstructionBudgetExhausted => write!(f, "instruction budget exhausted"),
            CrashKind::InvalidFree { addr } => write!(f, "invalid free of 0x{addr:x}"),
            CrashKind::OutOfMemory => write!(f, "guest heap exhausted"),
        }
    }
}

/// A crash record: what happened and where.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashInfo {
    /// The crash class.
    pub kind: CrashKind,
    /// The address of the instruction that was executing.
    pub location: Addr,
}

impl fmt::Display for CrashInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "crash at 0x{:x}: {}", self.location, self.kind)
    }
}

/// Errors returned by runtime APIs (not guest crashes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// The binary image does not fit the layout it claims.
    ImageDoesNotFit,
    /// An instruction address does not fall inside the loaded code image.
    AddressOutsideCode(Addr),
    /// Decoding the code image failed.
    Decode(cv_isa::IsaError),
    /// A hook id was not found (already removed or never registered).
    UnknownHook(u64),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::ImageDoesNotFit => write!(f, "binary image does not fit its layout"),
            RuntimeError::AddressOutsideCode(a) => {
                write!(f, "address 0x{a:x} is outside the loaded code")
            }
            RuntimeError::Decode(e) => write!(f, "decode error: {e}"),
            RuntimeError::UnknownHook(id) => write!(f, "unknown hook id {id}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<cv_isa::IsaError> for RuntimeError {
    fn from(e: cv_isa::IsaError) -> Self {
        RuntimeError::Decode(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_kind_display() {
        let c = CrashInfo {
            kind: CrashKind::UnmappedAccess { addr: 0x99 },
            location: 0x1000,
        };
        let s = c.to_string();
        assert!(s.contains("0x1000"));
        assert!(s.contains("0x99"));
    }

    #[test]
    fn runtime_error_from_isa_error() {
        let e: RuntimeError = cv_isa::IsaError::TruncatedInstruction.into();
        assert!(matches!(e, RuntimeError::Decode(_)));
        assert!(e.to_string().contains("decode"));
    }
}
