//! The append-only, in-repo performance history.
//!
//! `perf/history.jsonl` holds one [`PerfRecord`] per line, oldest first — the
//! Perun idea of profiles as versioned artifacts attached to commit history,
//! in its simplest durable form. The file is only ever *appended to*: the
//! writer opens in append mode, and nothing in this module can rewrite or
//! drop a line. Rewriting history would silently move the gate's baseline;
//! an append-only log means every verdict is reconstructible later.

use crate::record::PerfRecord;
use std::io::Write;
use std::path::Path;

/// A loaded history: records in file order (oldest first).
#[derive(Debug, Clone, Default)]
pub struct History {
    /// Every record, in append order.
    pub records: Vec<PerfRecord>,
}

impl History {
    /// Load a history file. A missing file is an empty history (the bootstrap
    /// state of a fresh checkout); a *malformed line* is an error naming the
    /// line number — a corrupt history must never be silently truncated.
    pub fn load(path: &Path) -> Result<History, String> {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(History::default()),
            Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
        };
        let mut records = Vec::new();
        for (index, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let record = PerfRecord::parse(line)
                .map_err(|e| format!("{}:{}: {e}", path.display(), index + 1))?;
            records.push(record);
        }
        Ok(History { records })
    }

    /// Append records to the history file (creating it and its parent
    /// directory if needed). Append is the **only** write primitive: the file
    /// is opened `O_APPEND`, never truncated.
    pub fn append(path: &Path, records: &[PerfRecord]) -> Result<(), String> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
            }
        }
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| format!("cannot open {} for append: {e}", path.display()))?;
        for record in records {
            writeln!(file, "{}", record.to_json_line())
                .map_err(|e| format!("cannot append to {}: {e}", path.display()))?;
        }
        Ok(())
    }

    /// The trailing window for gating `fresh`: the last `window` records of
    /// the same bench that are configuration-comparable with `fresh`
    /// ([`PerfRecord::comparable_with`]), oldest first, plus how many
    /// same-bench records were *skipped* as config-mismatched — the caller
    /// surfaces that as a warning, not an alarm.
    pub fn window_for<'a>(
        &'a self,
        fresh: &PerfRecord,
        window: usize,
    ) -> (Vec<&'a PerfRecord>, usize) {
        let mut matching = Vec::new();
        let mut skipped = 0usize;
        for record in &self.records {
            if record.bench != fresh.bench {
                continue;
            }
            if record.comparable_with(fresh) {
                matching.push(record);
            } else {
                skipped += 1;
            }
        }
        let start = matching.len().saturating_sub(window);
        (matching.split_off(start), skipped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::MetricStats;
    use std::collections::BTreeMap;

    fn record(bench: &str, commit: &str, cores: u32, median: f64) -> PerfRecord {
        let mut metrics = BTreeMap::new();
        metrics.insert("m".to_string(), MetricStats::from_samples(&[median]));
        PerfRecord {
            bench: bench.to_string(),
            commit: commit.to_string(),
            flags: "nodes=64".to_string(),
            cores,
            rounds: 1,
            warmups: 0,
            metrics,
        }
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("cv_perf_history_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn append_then_load_round_trips_in_order() {
        let path = temp_path("round_trip.jsonl");
        History::append(&path, &[record("a", "c1", 1, 100.0)]).unwrap();
        History::append(
            &path,
            &[record("a", "c2", 1, 101.0), record("b", "c2", 1, 7.0)],
        )
        .unwrap();
        let history = History::load(&path).unwrap();
        assert_eq!(history.records.len(), 3);
        assert_eq!(history.records[0].commit, "c1");
        assert_eq!(history.records[1].commit, "c2");
        assert_eq!(history.records[2].bench, "b");
        // Appending again grows the file — never rewrites it.
        let before = std::fs::read_to_string(&path).unwrap();
        History::append(&path, &[record("a", "c3", 1, 99.0)]).unwrap();
        let after = std::fs::read_to_string(&path).unwrap();
        assert!(after.starts_with(&before), "append-only: old bytes intact");
    }

    #[test]
    fn missing_file_is_empty_history_but_corrupt_line_is_an_error() {
        let path = temp_path("missing.jsonl");
        assert!(History::load(&path).unwrap().records.is_empty());
        std::fs::write(&path, "{\"schema\":1}\n").unwrap();
        let err = History::load(&path).unwrap_err();
        assert!(err.contains(":1:"), "error names the line: {err}");
    }

    #[test]
    fn window_matches_config_and_counts_skips() {
        let path = temp_path("window.jsonl");
        let records: Vec<PerfRecord> = (0..10)
            .map(|i| {
                record(
                    "a",
                    &format!("c{i}"),
                    if i == 4 { 8 } else { 1 },
                    100.0 + i as f64,
                )
            })
            .collect();
        History::append(&path, &records).unwrap();
        History::append(&path, &[record("other", "cx", 1, 5.0)]).unwrap();
        let history = History::load(&path).unwrap();
        let fresh = record("a", "fresh", 1, 100.0);
        let (window, skipped) = history.window_for(&fresh, 4);
        assert_eq!(skipped, 1, "the 8-core record is skipped, not compared");
        let commits: Vec<&str> = window.iter().map(|r| r.commit.as_str()).collect();
        assert_eq!(
            commits,
            vec!["c6", "c7", "c8", "c9"],
            "last 4, oldest first"
        );
    }
}
