//! Cross-crate integration tests for the application community (Section 3 and
//! Section 4.3.5 of the paper).

use clearview::apps::{learning_suite, red_team_exploits, Browser};
use clearview::community::{Community, Message};
use clearview::core::ClearViewConfig;
use clearview::runtime::RunStatus;

#[test]
fn simultaneous_exploits_across_members_are_repaired_independently() {
    let browser = Browser::build();
    let mut community = Community::new(browser.image.clone(), ClearViewConfig::default(), 3);
    community.distributed_learning(&learning_suite());

    let exploits = red_team_exploits(&browser);
    let a = exploits.iter().find(|e| e.bugzilla == 312278).unwrap();
    let b = exploits.iter().find(|e| e.bugzilla == 311710).unwrap();

    // Different members are attacked with different exploits, interleaved
    // (Section 4.3.5: multiple concurrent failures).
    for _ in 0..15 {
        community.browse(0, a.page());
        community.browse(1, b.page());
    }
    assert!(community.is_protected_against(browser.sym("vuln_312278_call")));
    assert!(community.is_protected_against(browser.sym("vuln_311710a_call")));
    assert!(community.is_protected_against(browser.sym("vuln_311710b_call")));
    assert!(community.is_protected_against(browser.sym("vuln_311710c_call")));

    // Every member — including one never attacked — survives both exploits.
    for node in 0..3 {
        assert!(matches!(
            community.browse(node, a.page()).status,
            RunStatus::Completed
        ));
        assert!(matches!(
            community.browse(node, b.page()).status,
            RunStatus::Completed
        ));
    }

    // The learning data for the two failures was kept separate: reports exist for both
    // and each repairs its own failure location.
    let reports = community.reports();
    assert!(
        reports.len() >= 4,
        "one response per repaired defect, got {}",
        reports.len()
    );
    // Patch distribution messages exist for both exploits' failure locations.
    let distributed: Vec<_> = community
        .log()
        .iter()
        .filter_map(|m| match m {
            Message::RepairDistributed { location, .. } => Some(*location),
            _ => None,
        })
        .collect();
    assert!(distributed.contains(&browser.sym("vuln_312278_call")));
    assert!(distributed.contains(&browser.sym("vuln_311710a_call")));
}

#[test]
fn benign_browsing_across_the_community_is_untouched() {
    let browser = Browser::build();
    let mut community = Community::new(browser.image.clone(), ClearViewConfig::default(), 2);
    community.distributed_learning(&learning_suite());
    for (i, page) in learning_suite().iter().enumerate() {
        let out = community.browse(i % 2, page);
        assert!(matches!(out.status, RunStatus::Completed));
        assert!(!out.blocked);
    }
    assert!(community.reports().is_empty());
}
