//! Quickstart: the Figure 1 pipeline end to end on the synthetic browser.
//!
//! Learning → monitoring → correlated invariant identification → candidate repair
//! generation → candidate repair evaluation, driven by repeatedly presenting one
//! exploit to a protected application.
//!
//! Run with: `cargo run --example quickstart`

use clearview::apps::{learning_suite, red_team_exploits, Browser};
use clearview::core::{learn_model, ClearViewConfig, Phase, ProtectedApplication};
use clearview::runtime::{MonitorConfig, RunStatus};

fn main() {
    // 1. Learning: observe normal executions of the stripped binary and infer a model
    //    of normal behaviour (a database of invariants over registers and memory).
    let browser = Browser::build();
    let (model, learn_stats) =
        learn_model(&browser.image, &learning_suite(), MonitorConfig::full());
    println!(
        "learned {} invariants from {} pages ({} trace events)",
        model.invariants.len(),
        learning_suite().len(),
        learn_stats.trace_events
    );

    // 2. Monitoring: run the application under the Memory Firewall, Heap Guard, and
    //    Shadow Stack, and present an exploit the Red Team would use.
    let exploit = red_team_exploits(&browser)
        .into_iter()
        .find(|e| e.bugzilla == 290162)
        .expect("exploit exists");
    let mut app =
        ProtectedApplication::new(browser.image.clone(), model, ClearViewConfig::default());

    for presentation in 1..=6 {
        let outcome = app.present(exploit.page());
        let phase = app
            .phase_of(browser.sym("vuln_290162_call"))
            .map(|p| format!("{p:?}"))
            .unwrap_or_else(|| "-".to_string());
        let status = match outcome.status {
            RunStatus::Completed => "survived (patched)".to_string(),
            RunStatus::Failure(f) => format!("blocked: {f}"),
            RunStatus::Crash(c) => format!("crashed: {c}"),
        };
        println!("presentation {presentation}: {status}  [response phase: {phase}]");
        if matches!(
            app.phase_of(browser.sym("vuln_290162_call")),
            Some(Phase::Protected)
        ) {
            break;
        }
    }

    // 3–5. Correlated invariants, the generated repairs, and their evaluation are all
    //      summarized in the maintainer-facing report.
    for report in app.reports() {
        println!("\n{report}");
    }

    // The patched application still renders legitimate pages exactly as before.
    let page = &learning_suite()[0];
    let rendered = app.present(page).rendered;
    println!("legitimate page renders {rendered:?} with the patch in place");
}
