//! General-purpose registers and condition flags.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The eight general-purpose registers of the simulated machine.
///
/// Names mirror 32-bit x86 so that the learning traces, patch descriptions, and repair
/// reports read like the examples in the paper (e.g. `mov [ebp+12], eax`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Reg {
    /// Accumulator; also holds procedure return values by convention.
    Eax,
    /// General purpose.
    Ebx,
    /// Counter register; used by copy loops by convention.
    Ecx,
    /// General purpose.
    Edx,
    /// Source index.
    Esi,
    /// Destination index.
    Edi,
    /// Frame base pointer.
    Ebp,
    /// Stack pointer.
    Esp,
}

impl Reg {
    /// All registers, in encoding order.
    pub const ALL: [Reg; 8] = [
        Reg::Eax,
        Reg::Ebx,
        Reg::Ecx,
        Reg::Edx,
        Reg::Esi,
        Reg::Edi,
        Reg::Ebp,
        Reg::Esp,
    ];

    /// The index used by the binary encoding (0..=7).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Reg::Eax => 0,
            Reg::Ebx => 1,
            Reg::Ecx => 2,
            Reg::Edx => 3,
            Reg::Esi => 4,
            Reg::Edi => 5,
            Reg::Ebp => 6,
            Reg::Esp => 7,
        }
    }

    /// Decode a register from its encoding index.
    pub fn from_index(idx: usize) -> Option<Reg> {
        Reg::ALL.get(idx).copied()
    }

    /// The conventional lowercase x86-style name (`eax`, `ebx`, ...).
    pub fn name(self) -> &'static str {
        match self {
            Reg::Eax => "eax",
            Reg::Ebx => "ebx",
            Reg::Ecx => "ecx",
            Reg::Edx => "edx",
            Reg::Esi => "esi",
            Reg::Edi => "edi",
            Reg::Ebp => "ebp",
            Reg::Esp => "esp",
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Condition flags produced by arithmetic and comparison instructions.
///
/// Only the flags consumed by the conditional jumps in [`crate::Cond`] are modelled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flags {
    /// Result was zero.
    pub zero: bool,
    /// Result was negative when interpreted as a signed value.
    pub sign: bool,
    /// Unsigned borrow / carry out.
    pub carry: bool,
    /// Signed overflow.
    pub overflow: bool,
}

impl Flags {
    /// Compute flags for the subtraction `a - b`, as `cmp a, b` would.
    ///
    /// The sign flag is the sign bit of the (wrapping) result; the signed "less than"
    /// condition is `sign != overflow`, exactly as on x86.
    pub fn from_cmp(a: u32, b: u32) -> Flags {
        let (res, carry) = a.overflowing_sub(b);
        let (_, overflow) = (a as i32).overflowing_sub(b as i32);
        Flags {
            zero: res == 0,
            sign: (res as i32) < 0,
            carry,
            overflow,
        }
    }

    /// Compute flags for a result value (used by `add`, `sub`, logical operations).
    pub fn from_result(res: u32, carry: bool, overflow: bool) -> Flags {
        Flags {
            zero: res == 0,
            sign: (res as i32) < 0,
            carry,
            overflow,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_index_round_trip() {
        for r in Reg::ALL {
            assert_eq!(Reg::from_index(r.index()), Some(r));
        }
        assert_eq!(Reg::from_index(8), None);
    }

    #[test]
    fn register_names_are_unique() {
        let mut names: Vec<&str> = Reg::ALL.iter().map(|r| r.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn cmp_flags_equal_sets_zero() {
        let f = Flags::from_cmp(7, 7);
        assert!(f.zero);
        assert!(!f.carry);
    }

    #[test]
    fn cmp_flags_unsigned_borrow() {
        let f = Flags::from_cmp(1, 2);
        assert!(!f.zero);
        assert!(f.carry, "1 - 2 borrows in unsigned arithmetic");
    }

    #[test]
    fn cmp_flags_signed_negative() {
        // -1 compared with 0 must look "less than" in the signed sense.
        let f = Flags::from_cmp((-1i32) as u32, 0);
        assert!(f.sign ^ f.overflow, "signed less-than condition holds");
    }

    #[test]
    fn cmp_flags_signed_positive_vs_negative() {
        // 5 compared with -3: 5 > -3, so signed less-than must not hold.
        let f = Flags::from_cmp(5, (-3i32) as u32);
        assert!(!(f.sign ^ f.overflow));
        assert!(!f.zero);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Reg::Eax.to_string(), "eax");
        assert_eq!(Reg::Esp.to_string(), "esp");
    }
}
