//! # cv-core — the ClearView orchestrator
//!
//! This crate implements the paper's primary contribution: the pipeline of Figure 1
//! that turns monitor-detected failures into evaluated repair patches.
//!
//! * [`ClearViewConfig`] — the policy knobs of the Red Team configuration.
//! * [`candidate_invariants`] / [`classify`] / [`Correlation`] — correlated invariant
//!   identification (Section 2.4).
//! * [`generate_repairs`] / [`RepairCandidate`] — candidate repair generation and the
//!   static ordering rules (Section 2.5, Section 2.6 tie-breaking).
//! * [`RepairEvaluator`] — the `(s − f) + b` repair scoring (Section 2.6).
//! * [`FailureResponder`] — the per-failure state machine: checking → repairing →
//!   protected, with give-up paths.
//! * [`manager`] — the sharded manager plane: pure digest routing
//!   ([`DigestRouter`]), per-shard responder ownership ([`ResponderShard`]), and the
//!   deterministic fleet-wide patch-op merge ([`PatchPlan`]).
//! * [`ProtectedApplication`] — a single application instance under ClearView
//!   protection: present pages, watch it learn from failure, and read back the
//!   Table 3-style [`AttackTimeline`] and maintainer [`RepairReport`]s.
//! * [`learn_model`] — drive the learning phase over a suite of pages.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod correlate;
mod evaluate;
pub mod manager;
mod pipeline;
mod repairgen;
mod responder;
mod tree;

pub use config::ClearViewConfig;
pub use correlate::{candidate_invariants, classify, CandidateSet, Correlation};
pub use evaluate::{RepairEvaluator, RepairScore};
pub use manager::{
    DigestRouter, FailureEvent, NetPatchState, PatchPlan, PlanOp, ResponderShard, RoutedDigest,
    ShardBucket, ShardOutcome, SourceId,
};
pub use pipeline::{
    checks_for, learn_model, AttackTimeline, PresentationOutcome, ProtectedApplication,
    SimTimeModel,
};
pub use repairgen::{generate_repairs, RepairCandidate};
pub use responder::{DigestStatus, Directive, FailureResponder, Phase, RepairReport, RunDigest};
pub use tree::{ManagerTree, TierMerge, TierPush, TierRowSpec};
