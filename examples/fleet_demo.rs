//! Community-scale immunity (Section 3 at fleet scale): a 1,200-member fleet learns
//! in parallel, five members are attacked, and every member — including the 1,195
//! that never saw the exploit — becomes immune via the distributed patch.
//!
//! Run with: `cargo run --release --example fleet_demo [-- --churn] [-- --trace PATH]
//! [-- --huge]`
//!
//! With `--huge`, the fleet is one **million** members on the event engine, patch
//! distribution runs through a fan-out-32 manager tree (depth 3 over a million
//! members), and the same claim holds: every member — including the 999,995
//! never attacked — survives first exposure, at ~11 bytes of coordinator-resident
//! state per member.
//!
//! With `--churn`, the demo continues into the durability plane: 240 members (20%)
//! crash mid-epoch with total state loss, half rejoin by shard-keyed delta sync
//! against their last checkpoint and half by full snapshot bootstrap, late members
//! join warm from the coordinator's snapshot — and everyone is immune on first
//! exposure, without one epoch of replayed learning.
//!
//! With `--trace PATH`, the `cv-obs` recorder is enabled for the whole run and the
//! demo writes a Chrome `trace_event` JSON to PATH (open in `chrome://tracing` or
//! ui.perfetto.dev) plus a per-phase summary — counts, exact medians/p99, repair
//! timelines — to PATH's `.summary.json` sibling and to stdout.

use clearview::apps::{evaluation_suite, learning_suite, red_team_exploits, Browser};
use clearview::core::ClearViewConfig;
use clearview::fleet::{Fleet, FleetConfig, MembershipOp, Presentation};
use clearview::obs::{chrome_trace_json, recorder, Summary};

const NODES: usize = 1_200;
const HUGE_NODES: usize = 1_000_000;
const HUGE_TREE_FANOUT: usize = 32;

/// Five attacked members spread across the fleet. The rest of the fleet is
/// immunized purely by the distributed patch.
fn attackers(nodes: usize) -> [usize; 5] {
    if nodes == NODES {
        [3, 271, 502, 777, 1_111]
    } else {
        [
            3,
            nodes / 5 + 3,
            2 * nodes / 5 + 3,
            3 * nodes / 5 + 3,
            4 * nodes / 5 + 3,
        ]
    }
}

/// `--trace PATH`: the path the Chrome trace goes to, if tracing was requested.
fn trace_path() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--trace" {
            return Some(args.next().expect("--trace requires a path"));
        }
    }
    None
}

fn main() {
    let trace = trace_path();
    if trace.is_some() {
        recorder().set_enabled(true);
    }
    let huge = std::env::args().any(|a| a == "--huge");
    let nodes = if huge { HUGE_NODES } else { NODES };
    let mut config = FleetConfig::new(nodes);
    if huge {
        // A million members sit three coordinator tiers below the root at
        // fan-out 32: no coordinator ever contacts more than 32 nodes.
        config = config.with_tree_fanout(HUGE_TREE_FANOUT);
    }
    let browser = Browser::build();
    let mut fleet = Fleet::new(browser.image.clone(), ClearViewConfig::default(), config);
    println!(
        "fleet of {} members across {} workers",
        fleet.node_count(),
        fleet.worker_count()
    );

    // Amortized parallel learning: members trace disjoint shares, shard workers merge
    // the uploads in parallel.
    fleet.distributed_learning(&learning_suite());
    println!(
        "distributed learning merged {} invariants into {} shards",
        fleet.model().invariants.len(),
        fleet.shard_count()
    );

    let exploit = red_team_exploits(&browser)
        .into_iter()
        .find(|e| e.bugzilla == 290162)
        .unwrap();
    let location = browser.sym("vuln_290162_call");

    // Benign background traffic plus the attackers hammering the same exploit.
    let benign = evaluation_suite();
    for round in 1..=10u64 {
        let mut batch: Vec<Presentation> = attackers(nodes)
            .iter()
            .map(|&node| Presentation::new(node, exploit.page()))
            .collect();
        for (i, page) in benign.iter().take(40).enumerate() {
            batch.push(Presentation::new(
                (round as usize * 53 + i * 13) % nodes,
                page.clone(),
            ));
        }
        let outcome = fleet.run_epoch(&batch);
        println!(
            "epoch {round}: {} presentations, {} blocked, {} completed — phase {:?}",
            outcome.outcomes.len(),
            outcome.blocked(),
            outcome.completed(),
            fleet.phase_of(location)
        );
        if fleet.is_protected_against(location) && outcome.blocked() == 0 {
            break;
        }
    }
    assert!(
        fleet.is_protected_against(location),
        "fleet failed to immunize: {:?}",
        fleet.phase_of(location)
    );

    // Every member survives its first exposure.
    let verify: Vec<Presentation> = (0..nodes)
        .map(|node| Presentation::new(node, exploit.page()))
        .collect();
    let outcome = fleet.run_epoch(&verify);
    println!(
        "verification epoch: {}/{} members survive the exploit (unexposed members immune)",
        outcome.completed(),
        nodes
    );
    assert_eq!(outcome.completed(), nodes);

    if std::env::args().any(|a| a == "--churn") {
        churn_scenario(&mut fleet, &exploit, location);
    }

    if let Some(path) = &trace {
        write_trace(path, &fleet);
    }

    println!("\n{}", fleet.metrics());
    println!(
        "wire traffic: {} words batched vs {} words per-event ({}x saved)",
        fleet.log().batched_wire_words(),
        fleet.log().unbatched_wire_words(),
        fleet.log().unbatched_wire_words() / fleet.log().batched_wire_words().max(1)
    );
    for report in fleet.reports() {
        println!("\n{report}");
    }
}

/// Export the recorded stream: Chrome trace to `path`, per-phase summary (the
/// per-phase breakdown `EXPERIMENTS.md` captures) to `path`'s `.summary.json`
/// sibling and stdout.
fn write_trace(path: &str, fleet: &Fleet) {
    let events = recorder().drain();
    std::fs::write(path, chrome_trace_json(&events)).expect("write chrome trace");
    let summary = Summary::build_for_fleet(&events, fleet.obs_id());
    let summary_path = match path.strip_suffix(".json") {
        Some(stem) => format!("{stem}.summary.json"),
        None => format!("{path}.summary.json"),
    };
    std::fs::write(&summary_path, summary.to_json()).expect("write trace summary");
    println!("\nper-phase trace summary:\n{summary}");
    println!(
        "wrote {path} ({} events — open in chrome://tracing or ui.perfetto.dev) and {summary_path}",
        events.len()
    );
}

/// The durability-plane continuation: churn the immunized fleet and prove the
/// snapshot / delta-sync path restores fleet-wide immunity.
fn churn_scenario(fleet: &mut Fleet, exploit: &clearview::apps::Exploit, location: u32) {
    // The doomed members' last checkpoint — their delta-sync base.
    let base = fleet.checkpoint();
    println!(
        "\n-- churn: checkpoint at epoch {} ({} bytes encoded) --",
        base.epoch,
        fleet.metrics().snapshot_bytes_last
    );

    // A fifth of the fleet runs one more epoch and dies before its patch push.
    let nodes = fleet.node_count();
    let kills: Vec<usize> = (nodes / 2..nodes / 2 + nodes / 5).collect();
    let batch: Vec<Presentation> = attackers(nodes)
        .iter()
        .map(|&node| Presentation::new(node, exploit.page()))
        .collect();
    fleet.run_epoch_churn(&batch, &kills);
    println!(
        "killed {} members mid-epoch; {} of {} still up",
        kills.len(),
        fleet.alive_count(),
        fleet.node_count()
    );

    // Half rejoin from their checkpoint (delta), half lost everything (full).
    let half = kills.len() / 2;
    for &node in &kills[..half] {
        fleet.apply_membership(MembershipOp::Rejoin {
            node,
            checkpoint: Some(&base),
        });
    }
    for &node in &kills[half..] {
        fleet.apply_membership(MembershipOp::Rejoin {
            node,
            checkpoint: None,
        });
    }
    // Late joiners warm-start from the sync source's snapshot.
    let joiners: Vec<usize> = (0..10)
        .map(|_| fleet.apply_membership(MembershipOp::JoinWarm).nodes[0])
        .collect();
    println!(
        "rejoined {} by delta sync, {} by full bootstrap; {} late joiners warm-started",
        half,
        kills.len() - half,
        joiners.len()
    );

    // Everyone — survivors, rejoiners, joiners — survives first exposure.
    let verify: Vec<Presentation> = (0..fleet.node_count())
        .map(|node| Presentation::new(node, exploit.page()))
        .collect();
    let outcome = fleet.run_epoch(&verify);
    println!(
        "churn verification epoch: {}/{} members survive the exploit",
        outcome.completed(),
        fleet.node_count()
    );
    assert_eq!(outcome.completed(), fleet.node_count());
    assert!(fleet.is_protected_against(location));
    assert!(
        fleet.metrics().max_joiner_immunity_epochs().unwrap_or(0) <= 1,
        "warm joiners reach Protected in <= 1 epoch"
    );
    println!(
        "delta sync shipped {} bytes where full snapshots would have shipped {} ({:.1}x saved)",
        fleet.metrics().delta_bytes_total,
        fleet.metrics().delta_full_bytes_total,
        fleet.metrics().delta_savings()
    );
}
