//! Delta snapshots: what changed between two checkpoints, keyed by (epoch, shard).
//!
//! A member that already holds the epoch-`B` snapshot should not re-download the
//! whole state to reach epoch `T`; it needs only the entries that changed. A
//! [`DeltaSnapshot`] carries exactly that: per *store shard*, the check-address
//! entries that were added or modified between the base and target epochs; plus the
//! addresses whose entries disappeared, the target's learning counters, newly
//! discovered procedures, and the target's net patch plan.
//!
//! The shard keying uses the **same** [`ShardRouter`] as the live
//! `ShardedInvariantStore` and the manager plane — the delta's section table is
//! literally keyed by `SHARD_SECTION_BASE + shard`, and
//! [`Snapshot::apply_delta`](crate::Snapshot::apply_delta) re-validates every
//! entry's routing on apply, so a shard-count or hash change can never silently
//! scatter entries across the wrong shards.

use crate::codec;
use crate::error::StoreError;
use crate::snapshot::{Snapshot, SECTION_PLAN};
use crate::wire::{read_container, require_section, write_container, Reader, Writer};
use cv_core::PatchPlan;
use cv_inference::{DirtySet, Invariant, InvariantDatabase, LearningStats, ShardRouter};
use cv_isa::Addr;
use std::collections::BTreeMap;

/// Magic bytes opening a delta container.
pub const DELTA_MAGIC: [u8; 4] = *b"CVDL";

/// Section id of the delta META section.
pub const SECTION_DELTA_META: u32 = 16;
/// Section id of the removed-addresses section.
pub const SECTION_REMOVED: u32 = 17;
/// Section id of the target learning-counter section.
pub const SECTION_STATS: u32 = 18;
/// Section id of the newly discovered procedure entries.
pub const SECTION_PROCS_ADDED: u32 = 19;
/// Per-shard entry sections use id `SHARD_SECTION_BASE + shard`.
pub const SHARD_SECTION_BASE: u32 = 0x100;

/// The changed entries owned by one store shard.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardDelta {
    /// The shard index (under the snapshot's [`ShardRouter`]).
    pub shard: u32,
    /// Added or modified `(check address, invariants)` entries, ascending.
    pub entries: Vec<(Addr, Vec<Invariant>)>,
}

/// Everything that changed between a base snapshot and a target snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaSnapshot {
    /// The epoch of the snapshot this delta was cut against.
    pub base_epoch: u64,
    /// The epoch the delta advances to.
    pub target_epoch: u64,
    /// The shard count both snapshots share.
    pub shard_count: u32,
    /// Addresses whose entries were dropped between base and target.
    pub removed: Vec<Addr>,
    /// Dirty shards only, ascending shard index.
    pub shards: Vec<ShardDelta>,
    /// The target's learning counters (replace the base's wholesale).
    pub stats: LearningStats,
    /// Procedure entries discovered since the base.
    pub procs_added: Vec<Addr>,
    /// The target's net patch plan (replaces the base's).
    pub plan: PatchPlan,
}

impl DeltaSnapshot {
    /// Diff two snapshots. Panics if their shard counts differ — a delta only makes
    /// sense under one routing.
    pub fn diff(base: &Snapshot, target: &Snapshot) -> DeltaSnapshot {
        assert_eq!(
            base.shard_count, target.shard_count,
            "snapshots must share one shard routing"
        );
        let _span = cv_obs::recorder()
            .span("store.delta_diff", "store")
            .arg("base_epoch", base.epoch)
            .arg("target_epoch", target.epoch);
        let router = ShardRouter::new(target.shard_count as usize);

        let base_entries: BTreeMap<Addr, &[Invariant]> = base.invariants.entries().collect();
        let mut removed: Vec<Addr> = Vec::new();
        let mut dirty: BTreeMap<u32, Vec<(Addr, Vec<Invariant>)>> = BTreeMap::new();
        let mut target_addrs: std::collections::BTreeSet<Addr> = Default::default();
        for (addr, invs) in target.invariants.entries() {
            target_addrs.insert(addr);
            if base_entries.get(&addr).copied() != Some(invs) {
                dirty
                    .entry(router.shard_of(addr) as u32)
                    .or_default()
                    .push((addr, invs.to_vec()));
            }
        }
        for addr in base_entries.keys() {
            if !target_addrs.contains(addr) {
                removed.push(*addr);
            }
        }

        let base_procs: std::collections::BTreeSet<Addr> =
            base.procedures.iter().copied().collect();
        let procs_added = target
            .procedures
            .iter()
            .copied()
            .filter(|p| !base_procs.contains(p))
            .collect();

        DeltaSnapshot {
            base_epoch: base.epoch,
            target_epoch: target.epoch,
            shard_count: target.shard_count,
            removed,
            shards: dirty
                .into_iter()
                .map(|(shard, entries)| ShardDelta { shard, entries })
                .collect(),
            stats: target.invariants.stats,
            procs_added,
            plan: target.plan.clone(),
        }
    }

    /// Number of dirty shards the delta carries.
    pub fn dirty_shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of added-or-modified entries across all dirty shards.
    pub fn changed_entries(&self) -> usize {
        self.shards.iter().map(|s| s.entries.len()).sum()
    }

    /// True if base and target states are identical (only the epoch advances).
    pub fn is_identity(&self) -> bool {
        self.removed.is_empty() && self.shards.is_empty() && self.procs_added.is_empty()
    }

    /// Validate this delta's shard routing against an applier's shard count:
    /// the shard counts must agree and every entry must route (under
    /// [`ShardRouter`]) to the shard section that carries it. `apply_delta`
    /// runs this before mutating anything; intermediate tier coordinators run
    /// it on relayed deltas so a cross-tier misroute is caught at the tier
    /// that received it, not only at the root.
    pub fn validate_routing(&self, shard_count: u32) -> Result<(), StoreError> {
        if self.shard_count != shard_count {
            return Err(StoreError::ShardCountMismatch {
                delta: self.shard_count,
                snapshot: shard_count,
            });
        }
        let router = ShardRouter::new(shard_count as usize);
        for shard in &self.shards {
            for (addr, _) in &shard.entries {
                if router.shard_of(*addr) as u32 != shard.shard {
                    return Err(StoreError::Corrupt {
                        context: "delta entry routed to the wrong shard",
                    });
                }
            }
        }
        Ok(())
    }

    /// Encode into the versioned container format (same section-table machinery as
    /// full snapshots; shard payloads keyed by `SHARD_SECTION_BASE + shard`).
    pub fn encode(&self) -> Vec<u8> {
        let span = cv_obs::recorder()
            .span("store.delta_encode", "store")
            .arg("base_epoch", self.base_epoch)
            .arg("target_epoch", self.target_epoch)
            .arg("dirty_shards", self.shards.len() as u64);
        let mut meta = Writer::new();
        meta.u64(self.base_epoch);
        meta.u64(self.target_epoch);
        meta.u32(self.shard_count);

        let mut removed = Writer::new();
        removed.u32(self.removed.len() as u32);
        removed.u32_column(&self.removed);

        let mut stats = Writer::new();
        codec::write_stats(&mut stats, &self.stats);

        let mut procs = Writer::new();
        procs.u32(self.procs_added.len() as u32);
        procs.u32_column(&self.procs_added);

        let mut plan = Writer::new();
        codec::write_plan(&mut plan, &self.plan);

        let mut sections = vec![
            (SECTION_DELTA_META, meta.into_bytes()),
            (SECTION_REMOVED, removed.into_bytes()),
            (SECTION_STATS, stats.into_bytes()),
            (SECTION_PROCS_ADDED, procs.into_bytes()),
            (SECTION_PLAN, plan.into_bytes()),
        ];
        for shard in &self.shards {
            let mut w = Writer::new();
            let entries: Vec<(Addr, &[Invariant])> = shard
                .entries
                .iter()
                .map(|(a, v)| (*a, v.as_slice()))
                .collect();
            codec::write_entries(&mut w, &entries);
            sections.push((SHARD_SECTION_BASE + shard.shard, w.into_bytes()));
        }
        let bytes = write_container(DELTA_MAGIC, crate::FORMAT_VERSION, &sections);
        span.arg("bytes", bytes.len() as u64).finish();
        bytes
    }

    /// Decode a delta container, validating — with the shared [`ShardRouter`] —
    /// that every entry actually routes to the shard section that carries it.
    pub fn decode(bytes: &[u8]) -> Result<DeltaSnapshot, StoreError> {
        let _span = cv_obs::recorder()
            .span("store.delta_decode", "store")
            .arg("bytes", bytes.len() as u64);
        let sections = read_container(bytes, DELTA_MAGIC, crate::FORMAT_VERSION)?;

        let mut r = Reader::new(require_section(&sections, SECTION_DELTA_META)?);
        let base_epoch = r.u64("delta base epoch")?;
        let target_epoch = r.u64("delta target epoch")?;
        let shard_count = r.u32("delta shard count")?;
        if shard_count == 0 {
            return Err(StoreError::Corrupt {
                context: "delta shard count is zero",
            });
        }
        let router = ShardRouter::new(shard_count as usize);

        let mut r = Reader::new(require_section(&sections, SECTION_REMOVED)?);
        let n_removed = r.len_u32(4, "removed count")?;
        let removed = r.u32_column(n_removed, "removed addresses")?;

        let mut r = Reader::new(require_section(&sections, SECTION_STATS)?);
        let stats = codec::read_stats(&mut r)?;

        let mut r = Reader::new(require_section(&sections, SECTION_PROCS_ADDED)?);
        let n_procs = r.len_u32(4, "added procedure count")?;
        let procs_added = r.u32_column(n_procs, "added procedure entries")?;

        let mut r = Reader::new(require_section(&sections, SECTION_PLAN)?);
        let plan = codec::read_plan(&mut r)?;

        let mut shards = Vec::new();
        for (id, payload) in &sections {
            if *id < SHARD_SECTION_BASE {
                continue;
            }
            let shard = id - SHARD_SECTION_BASE;
            if shard >= shard_count {
                return Err(StoreError::Corrupt {
                    context: "shard section index out of range",
                });
            }
            let mut r = Reader::new(payload);
            let entries = codec::read_entries(&mut r)?;
            if !r.is_exhausted() {
                return Err(StoreError::Corrupt {
                    context: "trailing bytes after a shard section",
                });
            }
            if entries.is_empty() {
                // A shard section *claims* the shard is dirty; carrying no entries
                // means the claim and the payload disagree — reject rather than
                // let an apply silently treat the shard as clean.
                return Err(StoreError::Corrupt {
                    context: "dirty shard section carries no entries",
                });
            }
            for (addr, _) in &entries {
                if router.shard_of(*addr) as u32 != shard {
                    return Err(StoreError::Corrupt {
                        context: "entry routed to the wrong shard section",
                    });
                }
            }
            shards.push(ShardDelta { shard, entries });
        }
        shards.sort_by_key(|s| s.shard);
        if shards.windows(2).any(|w| w[0].shard == w[1].shard) {
            return Err(StoreError::Corrupt {
                context: "duplicate shard section",
            });
        }

        Ok(DeltaSnapshot {
            base_epoch,
            target_epoch,
            shard_count,
            removed,
            shards,
            stats,
            procs_added,
            plan,
        })
    }
}

/// Cuts a [`DeltaSnapshot`] **incrementally** — from the dirty-epoch plane's
/// answer of what changed, never by materializing and diffing the target.
///
/// [`DeltaSnapshot::diff`] costs O(database): it walks every entry of two full
/// snapshots even when one address changed. `DeltaBuilder` instead takes the base
/// checkpoint and a [`DirtySet`] (from
/// [`DirtyEpochs::dirty_since`](cv_inference::DirtyEpochs::dirty_since) — a
/// superset of the addresses whose entries may differ from the base), re-compares
/// exactly those addresses against the live database, and emits the identical
/// delta in O(changed · log database).
///
/// **Byte-identity contract**: provided the dirty set really is a superset of the
/// changed addresses (the tracker's soundness contract), the cut delta is
/// byte-for-byte the delta `DeltaSnapshot::diff(base, target)` would produce from
/// the materialized target — same entries, same order, same encoding — proven by
/// the `delta_incremental` proptest suite over randomized epoch histories. All
/// wire guarantees (shard-routing validation, apply semantics, the golden
/// fixture) therefore hold unchanged.
#[derive(Debug)]
pub struct DeltaBuilder<'a> {
    base: &'a Snapshot,
    dirty: &'a DirtySet,
}

impl<'a> DeltaBuilder<'a> {
    /// A builder cutting deltas against `base`, re-checking the addresses in
    /// `dirty`. Panics if the dirty set's shard keying disagrees with the base's
    /// — one routing per delta, same rule as [`DeltaSnapshot::diff`].
    pub fn new(base: &'a Snapshot, dirty: &'a DirtySet) -> Self {
        assert_eq!(
            base.shard_count as usize,
            dirty.shard_count(),
            "dirty set and base snapshot must share one shard routing"
        );
        DeltaBuilder { base, dirty }
    }

    /// Cut the delta advancing the base to the live state: `invariants` is the
    /// coordinator's current database (its stats ride along wholesale), the dirty
    /// set's proc stamps supply the procedure additions, and `plan` is the
    /// current net patch plan (also carried wholesale, exactly as `diff` does).
    pub fn cut(
        &self,
        target_epoch: u64,
        invariants: &InvariantDatabase,
        plan: PatchPlan,
    ) -> DeltaSnapshot {
        let _span = cv_obs::recorder()
            .span("store.delta_cut_incremental", "store")
            .arg("base_epoch", self.base.epoch)
            .arg("target_epoch", target_epoch)
            .arg("dirty_addrs", self.dirty.dirty_addr_count() as u64);
        let mut removed: Vec<Addr> = Vec::new();
        let mut shards: Vec<ShardDelta> = Vec::new();
        for (shard, addrs) in self.dirty.per_shard.iter().enumerate() {
            let mut entries: Vec<(Addr, Vec<Invariant>)> = Vec::new();
            for &addr in addrs {
                // The same predicate `diff` applies to *every* address, evaluated
                // only for the dirty ones: untracked addresses are unchanged by
                // the dirty plane's soundness contract.
                let base_entry = self.base.invariants.entry(addr);
                match invariants.entry(addr) {
                    Some(target_entry) => {
                        if base_entry != Some(target_entry) {
                            entries.push((addr, target_entry.to_vec()));
                        }
                    }
                    None => {
                        if base_entry.is_some() {
                            removed.push(addr);
                        }
                    }
                }
            }
            if !entries.is_empty() {
                shards.push(ShardDelta {
                    shard: shard as u32,
                    entries,
                });
            }
        }
        // Per-shard entry lists are ascending (the dirty set is sorted per shard);
        // removals must be *globally* ascending like the diff's base-order walk.
        removed.sort_unstable();

        let procs_added: Vec<Addr> = self
            .dirty
            .procs
            .iter()
            .copied()
            .filter(|p| self.base.procedures.binary_search(p).is_err())
            .collect();

        DeltaSnapshot {
            base_epoch: self.base.epoch,
            target_epoch,
            shard_count: self.base.shard_count,
            removed,
            shards,
            stats: invariants.stats,
            procs_added,
            plan,
        }
    }
}

impl Snapshot {
    /// Advance this snapshot in place by applying a delta cut against it.
    ///
    /// Rejects (leaving `self` only partially un-advanced is impossible — routing
    /// and epochs are validated before any mutation) deltas whose base epoch or
    /// shard routing do not match.
    pub fn apply_delta(&mut self, delta: &DeltaSnapshot) -> Result<(), StoreError> {
        let _span = cv_obs::recorder()
            .span("store.delta_apply", "store")
            .arg("base_epoch", delta.base_epoch)
            .arg("target_epoch", delta.target_epoch)
            .arg("dirty_shards", delta.shards.len() as u64);
        if delta.base_epoch != self.epoch {
            return Err(StoreError::BaseMismatch {
                expected_epoch: delta.base_epoch,
                found_epoch: self.epoch,
            });
        }
        delta.validate_routing(self.shard_count)?;
        for addr in &delta.removed {
            self.invariants.set_entry(*addr, Vec::new());
        }
        for shard in &delta.shards {
            for (addr, invs) in &shard.entries {
                self.invariants.set_entry(*addr, invs.clone());
            }
        }
        self.invariants.stats = delta.stats;
        let mut procs: std::collections::BTreeSet<Addr> = self.procedures.iter().copied().collect();
        procs.extend(delta.procs_added.iter().copied());
        self.procedures = procs.into_iter().collect();
        self.plan = delta.plan.clone();
        self.epoch = delta.target_epoch;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_inference::{InvariantDatabase, Variable};
    use cv_isa::{Operand, Reg};

    fn snapshot_with(entries: &[(Addr, i32)], epoch: u64) -> Snapshot {
        let mut invariants = InvariantDatabase::new();
        for (addr, min) in entries {
            invariants.insert(Invariant::LowerBound {
                var: Variable::read(*addr, 0, Operand::Reg(Reg::Ecx)),
                min: *min,
            });
        }
        invariants.recount();
        Snapshot {
            epoch,
            shard_count: 4,
            invariants,
            procedures: vec![0x4_0000],
            plan: PatchPlan::new(),
        }
    }

    #[test]
    fn diff_apply_reaches_the_target_exactly() {
        let base = snapshot_with(&[(0x1000, 1), (0x1004, 2), (0x1008, 3)], 5);
        let mut target = snapshot_with(&[(0x1000, 1), (0x1004, -9), (0x100C, 4)], 8);
        target.procedures.push(0x4_0040);
        let delta = DeltaSnapshot::diff(&base, &target);
        // 0x1004 changed, 0x100C added, 0x1008 removed, 0x1000 untouched.
        assert_eq!(delta.changed_entries(), 2);
        assert_eq!(delta.removed, vec![0x1008]);
        assert_eq!(delta.procs_added, vec![0x4_0040]);

        let mut advanced = base.clone();
        advanced.apply_delta(&delta).unwrap();
        assert_eq!(advanced, target);
    }

    #[test]
    fn delta_round_trips_byte_identically() {
        let base = snapshot_with(&[(0x1000, 1), (0x1004, 2)], 5);
        let target = snapshot_with(&[(0x1000, 7), (0x1010, 2)], 6);
        let delta = DeltaSnapshot::diff(&base, &target);
        let bytes = delta.encode();
        let decoded = DeltaSnapshot::decode(&bytes).unwrap();
        assert_eq!(decoded, delta);
        assert_eq!(decoded.encode(), bytes);
    }

    #[test]
    fn wrong_base_and_wrong_routing_are_rejected() {
        let base = snapshot_with(&[(0x1000, 1)], 5);
        let target = snapshot_with(&[(0x1000, 2)], 6);
        let delta = DeltaSnapshot::diff(&base, &target);

        let mut wrong_epoch = base.clone();
        wrong_epoch.epoch = 4;
        assert!(matches!(
            wrong_epoch.apply_delta(&delta),
            Err(StoreError::BaseMismatch { .. })
        ));

        let mut wrong_shards = base.clone();
        wrong_shards.shard_count = 8;
        assert!(matches!(
            wrong_shards.apply_delta(&delta),
            Err(StoreError::ShardCountMismatch { .. })
        ));

        // An entry moved to the wrong shard section must be caught by the shared
        // router on decode.
        let mut mangled = delta.clone();
        mangled.shards[0].shard = (mangled.shards[0].shard + 1) % 4;
        assert!(matches!(
            DeltaSnapshot::decode(&mangled.encode()),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn incremental_cut_matches_diff_byte_for_byte() {
        use cv_inference::DirtyEpochs;

        let base = snapshot_with(&[(0x1000, 1), (0x1004, 2), (0x1008, 3)], 5);
        // Target state: 0x1004 rebound, 0x100C added, 0x1008 dropped, plus a new
        // procedure — built as live mutations stamped into a dirty tracker.
        let mut live = base.invariants.clone();
        let mut dirty = DirtyEpochs::new(4, 5);
        dirty.begin_epoch(8);
        live.set_entry(
            0x1004,
            vec![Invariant::LowerBound {
                var: Variable::read(0x1004, 0, Operand::Reg(Reg::Ecx)),
                min: -9,
            }],
        );
        dirty.mark(0x1004);
        live.set_entry(
            0x100C,
            vec![Invariant::LowerBound {
                var: Variable::read(0x100C, 0, Operand::Reg(Reg::Ecx)),
                min: 4,
            }],
        );
        dirty.mark(0x100C);
        live.set_entry(0x1008, Vec::new());
        dirty.mark(0x1008);
        live.recount();
        dirty.mark_proc(0x4_0040);
        // An address stamped dirty but unchanged (re-dirtied back to base) and a
        // proc the base already holds: the re-compare must filter both out.
        dirty.mark(0x1000);
        dirty.mark_proc(0x4_0000);

        let mut target = Snapshot {
            epoch: 8,
            shard_count: 4,
            invariants: live.clone(),
            procedures: vec![0x4_0000, 0x4_0040],
            plan: PatchPlan::new(),
        };
        target.invariants.stats = live.stats;

        let diffed = DeltaSnapshot::diff(&base, &target);
        let set = dirty.dirty_since(base.epoch).unwrap();
        let incremental = DeltaBuilder::new(&base, &set).cut(8, &live, PatchPlan::new());
        assert_eq!(incremental, diffed);
        assert_eq!(incremental.encode(), diffed.encode());

        let mut advanced = base.clone();
        advanced.apply_delta(&incremental).unwrap();
        assert_eq!(advanced, target);
    }

    #[test]
    fn empty_dirty_shard_section_is_rejected() {
        let base = snapshot_with(&[(0x1000, 1)], 5);
        let target = snapshot_with(&[(0x1000, 2)], 6);
        let mut delta = DeltaSnapshot::diff(&base, &target);
        // Claim a dirty shard without carrying any entries for it.
        delta.shards[0].entries.clear();
        assert_eq!(
            DeltaSnapshot::decode(&delta.encode()),
            Err(StoreError::Corrupt {
                context: "dirty shard section carries no entries"
            })
        );
    }

    #[test]
    fn identity_delta_only_advances_the_epoch() {
        let base = snapshot_with(&[(0x1000, 1)], 5);
        let mut target = base.clone();
        target.epoch = 9;
        let delta = DeltaSnapshot::diff(&base, &target);
        assert!(delta.is_identity());
        let mut advanced = base.clone();
        advanced.apply_delta(&delta).unwrap();
        assert_eq!(advanced.epoch, 9);
        assert_eq!(advanced.invariants, base.invariants);
    }
}
