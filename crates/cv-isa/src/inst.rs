//! The instruction set of the simulated machine.

use crate::{Addr, MemRef, Operand, Reg};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Conditions for conditional jumps, mirroring the x86 `jcc` family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Cond {
    /// Jump if equal (`zero`).
    Eq,
    /// Jump if not equal (`!zero`).
    Ne,
    /// Jump if signed less-than (`sign != overflow`).
    Lt,
    /// Jump if signed less-or-equal.
    Le,
    /// Jump if signed greater-than.
    Gt,
    /// Jump if signed greater-or-equal.
    Ge,
    /// Jump if unsigned below (`carry`).
    Below,
    /// Jump if unsigned above-or-equal (`!carry`).
    AboveEq,
}

impl Cond {
    /// All conditions, in encoding order.
    pub const ALL: [Cond; 8] = [
        Cond::Eq,
        Cond::Ne,
        Cond::Lt,
        Cond::Le,
        Cond::Gt,
        Cond::Ge,
        Cond::Below,
        Cond::AboveEq,
    ];

    /// Encoding index.
    pub fn index(self) -> usize {
        Cond::ALL
            .iter()
            .position(|c| *c == self)
            .expect("cond in ALL")
    }

    /// Decode from encoding index.
    pub fn from_index(idx: usize) -> Option<Cond> {
        Cond::ALL.get(idx).copied()
    }

    /// Evaluate the condition against a set of flags.
    pub fn eval(self, flags: crate::Flags) -> bool {
        let lt = flags.sign != flags.overflow;
        match self {
            Cond::Eq => flags.zero,
            Cond::Ne => !flags.zero,
            Cond::Lt => lt,
            Cond::Le => lt || flags.zero,
            Cond::Gt => !lt && !flags.zero,
            Cond::Ge => !lt,
            Cond::Below => flags.carry,
            Cond::AboveEq => !flags.carry,
        }
    }

    /// Mnemonic suffix (`e`, `ne`, `l`, ...).
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "e",
            Cond::Ne => "ne",
            Cond::Lt => "l",
            Cond::Le => "le",
            Cond::Gt => "g",
            Cond::Ge => "ge",
            Cond::Below => "b",
            Cond::AboveEq => "ae",
        }
    }
}

/// Ports used by the I/O intrinsics. The guest browser reads "page" words from
/// [`Port::Input`] and renders output words to [`Port::Render`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Port {
    /// The input stream (the bytes of the web page being processed).
    Input,
    /// The rendered output stream (the "display" compared for autoimmune evaluation).
    Render,
    /// Diagnostic output used by tests.
    Debug,
}

impl Port {
    /// All ports, in encoding order.
    pub const ALL: [Port; 3] = [Port::Input, Port::Render, Port::Debug];

    /// Encoding index.
    pub fn index(self) -> usize {
        Port::ALL
            .iter()
            .position(|p| *p == self)
            .expect("port in ALL")
    }

    /// Decode from encoding index.
    pub fn from_index(idx: usize) -> Option<Port> {
        Port::ALL.get(idx).copied()
    }
}

/// A machine instruction.
///
/// The arithmetic/move/control subset mirrors 32-bit x86. The `Alloc`, `Free`, and
/// `Copy` intrinsics model the C runtime allocator and `memcpy`: the real ClearView
/// deployment intercepts these at the binary level (Heap Guard wraps the allocator and
/// instruments heap writes); modelling them as intrinsic instructions gives the runtime
/// the same interception points without an FFI to a real instrumentation framework.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Inst {
    /// `mov dst, src`.
    Mov {
        /// Destination (register or memory).
        dst: Operand,
        /// Source.
        src: Operand,
    },
    /// `lea dst, [mem]` — compute the address of `mem` without accessing memory.
    Lea {
        /// Destination register.
        dst: Reg,
        /// Address expression.
        mem: MemRef,
    },
    /// `add dst, src` (wrapping).
    Add {
        /// Destination (register or memory).
        dst: Operand,
        /// Source.
        src: Operand,
    },
    /// `sub dst, src` (wrapping).
    Sub {
        /// Destination (register or memory).
        dst: Operand,
        /// Source.
        src: Operand,
    },
    /// `imul dst, src` (wrapping signed multiply).
    Mul {
        /// Destination register.
        dst: Reg,
        /// Source.
        src: Operand,
    },
    /// `and dst, src`.
    And {
        /// Destination (register or memory).
        dst: Operand,
        /// Source.
        src: Operand,
    },
    /// `or dst, src`.
    Or {
        /// Destination (register or memory).
        dst: Operand,
        /// Source.
        src: Operand,
    },
    /// `xor dst, src`.
    Xor {
        /// Destination (register or memory).
        dst: Operand,
        /// Source.
        src: Operand,
    },
    /// `shl dst, amount`.
    Shl {
        /// Destination (register or memory).
        dst: Operand,
        /// Shift amount.
        src: Operand,
    },
    /// `shr dst, amount` (logical).
    Shr {
        /// Destination (register or memory).
        dst: Operand,
        /// Shift amount.
        src: Operand,
    },
    /// `cmp a, b` — set flags from `a - b`.
    Cmp {
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `test a, b` — set flags from `a & b`.
    Test {
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `jmp addr` — unconditional direct jump.
    Jmp {
        /// Target address.
        target: Addr,
    },
    /// `jmp *op` — unconditional indirect jump.
    JmpIndirect {
        /// Operand holding the target address.
        target: Operand,
    },
    /// `jcc addr` — conditional direct jump.
    Jcc {
        /// Condition.
        cond: Cond,
        /// Target address.
        target: Addr,
    },
    /// `call addr` — direct call; pushes the return address.
    Call {
        /// Target address.
        target: Addr,
    },
    /// `call *op` — indirect call; pushes the return address.
    ///
    /// Indirect calls through corrupted function pointers are the control-flow attack
    /// vector exercised by most of the Red Team exploits.
    CallIndirect {
        /// Operand holding the target address.
        target: Operand,
    },
    /// `ret` — pop the return address and jump to it.
    Ret,
    /// `push src`.
    Push {
        /// Value pushed.
        src: Operand,
    },
    /// `pop dst`.
    Pop {
        /// Destination (register or memory).
        dst: Operand,
    },
    /// Allocate `size` words on the guest heap; the block address is placed in `dst`.
    ///
    /// Stands in for `malloc`, which Heap Guard wraps in the real system.
    Alloc {
        /// Requested size in words.
        size: Operand,
        /// Register receiving the block address (0 on failure).
        dst: Reg,
    },
    /// Free the heap block whose address is in `ptr`. Stands in for `free`.
    Free {
        /// Block address.
        ptr: Operand,
    },
    /// Copy `len` words from `src` to `dst`, word by word, through the normal memory
    /// write path (so Heap Guard observes every write). Stands in for `memcpy`.
    ///
    /// `len` is treated as **unsigned**, exactly like the `memcpy` length parameter —
    /// this is what turns a negative computed length into a huge copy in exploit
    /// 296134 and the buffer-growth overflow in 325403.
    Copy {
        /// Destination start address.
        dst: Operand,
        /// Source start address.
        src: Operand,
        /// Number of words to copy (unsigned).
        len: Operand,
    },
    /// Read the next word from an input port into `dst`; writes 0 when exhausted.
    In {
        /// Destination register.
        dst: Reg,
        /// Port to read from.
        port: Port,
    },
    /// Write a word to an output port.
    Out {
        /// Value written.
        src: Operand,
        /// Port to write to.
        port: Port,
    },
    /// Stop execution successfully.
    Halt,
    /// No operation.
    Nop,
}

/// A fixed-capacity, stack-allocated list of up to `N` copyable items.
///
/// The trace front end queries [`Inst::operands_read`] and [`Inst::mem_refs`] once per
/// *executed* instruction — the hottest loop in learning mode. Returning a `Vec` there
/// heap-allocates per event; an `InlineList` lives entirely in registers/stack. No
/// instruction reads more than three operands or computes more than three addresses,
/// so `N = 3` covers the whole instruction set (checked by `debug_assert` on push).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InlineList<T, const N: usize> {
    items: [T; N],
    len: u8,
}

impl<T: Copy, const N: usize> InlineList<T, N> {
    /// The fixed capacity `N` — exposed so downstream tables sized per slot (the
    /// inference engine's schedules) stay in sync with the instruction set by
    /// construction.
    pub const CAPACITY: usize = N;

    /// An empty list; `fill` pads the unused tail (it is never observable).
    pub fn new(fill: T) -> Self {
        InlineList {
            items: [fill; N],
            len: 0,
        }
    }

    /// Append an item. Panics in debug builds if the capacity is exceeded.
    pub fn push(&mut self, item: T) {
        debug_assert!((self.len as usize) < N, "InlineList capacity exceeded");
        self.items[self.len as usize] = item;
        self.len += 1;
    }

    /// The populated prefix as a slice.
    pub fn as_slice(&self) -> &[T] {
        &self.items[..self.len as usize]
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True if the list holds no items.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<T: Copy, const N: usize> std::ops::Deref for InlineList<T, N> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy, const N: usize> IntoIterator for InlineList<T, N> {
    type Item = T;
    type IntoIter = std::iter::Take<std::array::IntoIter<T, N>>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter().take(self.len as usize)
    }
}

impl<'a, T: Copy, const N: usize> IntoIterator for &'a InlineList<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// The read operands of one instruction (at most three).
pub type ReadOperands = InlineList<Operand, 3>;

/// The memory references of one instruction (at most three).
pub type MemRefs = InlineList<MemRef, 3>;

impl Inst {
    /// A short mnemonic used in disassembly listings and patch reports.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Inst::Mov { .. } => "mov",
            Inst::Lea { .. } => "lea",
            Inst::Add { .. } => "add",
            Inst::Sub { .. } => "sub",
            Inst::Mul { .. } => "imul",
            Inst::And { .. } => "and",
            Inst::Or { .. } => "or",
            Inst::Xor { .. } => "xor",
            Inst::Shl { .. } => "shl",
            Inst::Shr { .. } => "shr",
            Inst::Cmp { .. } => "cmp",
            Inst::Test { .. } => "test",
            Inst::Jmp { .. } => "jmp",
            Inst::JmpIndirect { .. } => "jmp*",
            Inst::Jcc { .. } => "jcc",
            Inst::Call { .. } => "call",
            Inst::CallIndirect { .. } => "call*",
            Inst::Ret => "ret",
            Inst::Push { .. } => "push",
            Inst::Pop { .. } => "pop",
            Inst::Alloc { .. } => "alloc",
            Inst::Free { .. } => "free",
            Inst::Copy { .. } => "copy",
            Inst::In { .. } => "in",
            Inst::Out { .. } => "out",
            Inst::Halt => "halt",
            Inst::Nop => "nop",
        }
    }

    /// True if this instruction ends a basic block (any control transfer or halt).
    pub fn ends_basic_block(&self) -> bool {
        matches!(
            self,
            Inst::Jmp { .. }
                | Inst::JmpIndirect { .. }
                | Inst::Jcc { .. }
                | Inst::Call { .. }
                | Inst::CallIndirect { .. }
                | Inst::Ret
                | Inst::Halt
        )
    }

    /// True if this is a control transfer whose target cannot be determined statically.
    pub fn is_indirect_transfer(&self) -> bool {
        matches!(
            self,
            Inst::JmpIndirect { .. } | Inst::CallIndirect { .. } | Inst::Ret
        )
    }

    /// True if this instruction is a procedure call (direct or indirect).
    pub fn is_call(&self) -> bool {
        matches!(self, Inst::Call { .. } | Inst::CallIndirect { .. })
    }

    /// Operands that the instruction *reads* (excluding address computations, which are
    /// reported separately by the trace front end). Allocation-free: this is queried
    /// once per traced instruction execution.
    pub fn operands_read(&self) -> ReadOperands {
        let mut out = ReadOperands::new(Operand::Imm(0));
        match *self {
            Inst::Mov { src, .. } => out.push(src),
            Inst::Lea { .. } => {}
            Inst::Add { dst, src }
            | Inst::Sub { dst, src }
            | Inst::And { dst, src }
            | Inst::Or { dst, src }
            | Inst::Xor { dst, src }
            | Inst::Shl { dst, src }
            | Inst::Shr { dst, src } => {
                out.push(dst);
                out.push(src);
            }
            Inst::Mul { dst, src } => {
                out.push(Operand::Reg(dst));
                out.push(src);
            }
            Inst::Cmp { a, b } | Inst::Test { a, b } => {
                out.push(a);
                out.push(b);
            }
            Inst::Jmp { .. } | Inst::Jcc { .. } | Inst::Call { .. } => {}
            Inst::JmpIndirect { target } | Inst::CallIndirect { target } => out.push(target),
            Inst::Ret | Inst::Halt | Inst::Nop => {}
            Inst::Push { src } => out.push(src),
            Inst::Pop { .. } => {}
            Inst::Alloc { size, .. } => out.push(size),
            Inst::Free { ptr } => out.push(ptr),
            Inst::Copy { dst, src, len } => {
                out.push(dst);
                out.push(src);
                out.push(len);
            }
            Inst::In { .. } => {}
            Inst::Out { src, .. } => out.push(src),
        }
        out
    }

    /// True if executing this instruction writes the register `r`.
    ///
    /// Calls and returns are not considered here (callees may clobber anything); use
    /// [`Inst::is_call`] to treat them conservatively. Used by the equal-variable
    /// deduplication analysis, which must only merge variables whose equality is
    /// guaranteed by the control-flow graph rather than merely observed.
    pub fn writes_register(&self, r: Reg) -> bool {
        let writes_operand = |op: &Operand| matches!(op, Operand::Reg(reg) if *reg == r);
        match self {
            Inst::Mov { dst, .. }
            | Inst::Add { dst, .. }
            | Inst::Sub { dst, .. }
            | Inst::And { dst, .. }
            | Inst::Or { dst, .. }
            | Inst::Xor { dst, .. }
            | Inst::Shl { dst, .. }
            | Inst::Shr { dst, .. } => writes_operand(dst),
            Inst::Lea { dst, .. }
            | Inst::Mul { dst, .. }
            | Inst::Alloc { dst, .. }
            | Inst::In { dst, .. } => *dst == r,
            Inst::Pop { dst } => writes_operand(dst) || r == Reg::Esp,
            Inst::Push { .. } => r == Reg::Esp,
            Inst::Call { .. } | Inst::CallIndirect { .. } | Inst::Ret => r == Reg::Esp,
            _ => false,
        }
    }

    /// Memory references whose addresses this instruction computes. Allocation-free:
    /// this is queried once per traced instruction execution.
    pub fn mem_refs(&self) -> MemRefs {
        let mut out = MemRefs::new(MemRef::abs(0));
        let mut push_op = |op: &Operand| {
            if let Operand::Mem(m) = op {
                out.push(*m);
            }
        };
        match self {
            Inst::Mov { dst, src }
            | Inst::Add { dst, src }
            | Inst::Sub { dst, src }
            | Inst::And { dst, src }
            | Inst::Or { dst, src }
            | Inst::Xor { dst, src }
            | Inst::Shl { dst, src }
            | Inst::Shr { dst, src } => {
                push_op(dst);
                push_op(src);
            }
            Inst::Mul { src, .. } => push_op(src),
            Inst::Lea { mem, .. } => out.push(*mem),
            Inst::Cmp { a, b } | Inst::Test { a, b } => {
                push_op(a);
                push_op(b);
            }
            Inst::JmpIndirect { target } | Inst::CallIndirect { target } => push_op(target),
            Inst::Push { src } => push_op(src),
            Inst::Pop { dst } => push_op(dst),
            Inst::Alloc { size, .. } => push_op(size),
            Inst::Free { ptr } => push_op(ptr),
            Inst::Copy { dst, src, len } => {
                push_op(dst);
                push_op(src);
                push_op(len);
            }
            Inst::Out { src, .. } => push_op(src),
            _ => {}
        }
        out
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Mov { dst, src } => write!(f, "mov {dst}, {src}"),
            Inst::Lea { dst, mem } => write!(f, "lea {dst}, {mem}"),
            Inst::Add { dst, src } => write!(f, "add {dst}, {src}"),
            Inst::Sub { dst, src } => write!(f, "sub {dst}, {src}"),
            Inst::Mul { dst, src } => write!(f, "imul {dst}, {src}"),
            Inst::And { dst, src } => write!(f, "and {dst}, {src}"),
            Inst::Or { dst, src } => write!(f, "or {dst}, {src}"),
            Inst::Xor { dst, src } => write!(f, "xor {dst}, {src}"),
            Inst::Shl { dst, src } => write!(f, "shl {dst}, {src}"),
            Inst::Shr { dst, src } => write!(f, "shr {dst}, {src}"),
            Inst::Cmp { a, b } => write!(f, "cmp {a}, {b}"),
            Inst::Test { a, b } => write!(f, "test {a}, {b}"),
            Inst::Jmp { target } => write!(f, "jmp 0x{target:x}"),
            Inst::JmpIndirect { target } => write!(f, "jmp *{target}"),
            Inst::Jcc { cond, target } => write!(f, "j{} 0x{target:x}", cond.mnemonic()),
            Inst::Call { target } => write!(f, "call 0x{target:x}"),
            Inst::CallIndirect { target } => write!(f, "call *{target}"),
            Inst::Ret => write!(f, "ret"),
            Inst::Push { src } => write!(f, "push {src}"),
            Inst::Pop { dst } => write!(f, "pop {dst}"),
            Inst::Alloc { size, dst } => write!(f, "alloc {dst}, {size}"),
            Inst::Free { ptr } => write!(f, "free {ptr}"),
            Inst::Copy { dst, src, len } => write!(f, "copy {dst}, {src}, {len}"),
            Inst::In { dst, port } => write!(f, "in {dst}, {port:?}"),
            Inst::Out { src, port } => write!(f, "out {src}, {port:?}"),
            Inst::Halt => write!(f, "halt"),
            Inst::Nop => write!(f, "nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Flags;

    #[test]
    fn cond_round_trip() {
        for c in Cond::ALL {
            assert_eq!(Cond::from_index(c.index()), Some(c));
        }
    }

    #[test]
    fn cond_eval_matches_semantics() {
        // 3 cmp 5 -> less-than.
        let f = Flags::from_cmp(3, 5);
        assert!(Cond::Lt.eval(f));
        assert!(Cond::Le.eval(f));
        assert!(Cond::Ne.eval(f));
        assert!(!Cond::Gt.eval(f));
        assert!(!Cond::Ge.eval(f));
        assert!(!Cond::Eq.eval(f));
        assert!(Cond::Below.eval(f));
        // -1 cmp 1 -> signed less-than but unsigned above.
        let f = Flags::from_cmp(u32::MAX, 1);
        assert!(Cond::Lt.eval(f));
        assert!(Cond::AboveEq.eval(f));
    }

    #[test]
    fn port_round_trip() {
        for p in Port::ALL {
            assert_eq!(Port::from_index(p.index()), Some(p));
        }
    }

    #[test]
    fn ends_basic_block_classification() {
        assert!(Inst::Ret.ends_basic_block());
        assert!(Inst::Halt.ends_basic_block());
        assert!(Inst::Jmp { target: 5 }.ends_basic_block());
        assert!(!Inst::Nop.ends_basic_block());
        assert!(!Inst::Mov {
            dst: Operand::Reg(Reg::Eax),
            src: Operand::Imm(1)
        }
        .ends_basic_block());
    }

    #[test]
    fn indirect_transfer_classification() {
        assert!(Inst::CallIndirect {
            target: Operand::Reg(Reg::Eax)
        }
        .is_indirect_transfer());
        assert!(Inst::Ret.is_indirect_transfer());
        assert!(!Inst::Call { target: 10 }.is_indirect_transfer());
    }

    #[test]
    fn operands_read_for_copy() {
        let c = Inst::Copy {
            dst: Operand::Reg(Reg::Edi),
            src: Operand::Reg(Reg::Esi),
            len: Operand::Reg(Reg::Ecx),
        };
        assert_eq!(c.operands_read().len(), 3);
    }

    #[test]
    fn mem_refs_collected() {
        let i = Inst::Mov {
            dst: Operand::Mem(MemRef::base_disp(Reg::Ebp, 12)),
            src: Operand::Reg(Reg::Eax),
        };
        assert_eq!(i.mem_refs().as_slice(), &[MemRef::base_disp(Reg::Ebp, 12)]);
        assert_eq!(i.to_string(), "mov [ebp+12], eax");
    }

    #[test]
    fn display_of_control_flow() {
        assert_eq!(Inst::Jmp { target: 0x10 }.to_string(), "jmp 0x10");
        assert_eq!(
            Inst::Jcc {
                cond: Cond::Lt,
                target: 0x20
            }
            .to_string(),
            "jl 0x20"
        );
        assert_eq!(
            Inst::CallIndirect {
                target: Operand::Reg(Reg::Eax)
            }
            .to_string(),
            "call *eax"
        );
    }
}
