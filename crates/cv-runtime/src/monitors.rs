//! Failure monitors: Memory Firewall, Heap Guard, and the Shadow Stack.
//!
//! A ClearView monitor detects a *failure* and reports the *failure location* — the
//! program counter of the instruction at which the failure was detected (Section 2.3).
//! Monitors have no false positives by construction: they only fire on behaviour that is
//! definitely outside the application's specification (an illegal control transfer or an
//! out-of-bounds heap write).

use cv_isa::Addr;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which monitors (and the Shadow Stack) are enabled for an execution.
///
/// The paper's Red Team configuration runs with all three enabled; Table 2 measures the
/// overhead of each combination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MonitorConfig {
    /// Memory Firewall: validate every control-flow transfer (program shepherding).
    pub memory_firewall: bool,
    /// Heap Guard: canary checks on heap writes.
    pub heap_guard: bool,
    /// Shadow Stack: maintain an auxiliary call stack for failure reports.
    pub shadow_stack: bool,
}

impl MonitorConfig {
    /// Everything off — "bare" execution used as the Table 2 baseline.
    pub fn bare() -> Self {
        MonitorConfig {
            memory_firewall: false,
            heap_guard: false,
            shadow_stack: false,
        }
    }

    /// Memory Firewall only (the always-on production monitor).
    pub fn memory_firewall_only() -> Self {
        MonitorConfig {
            memory_firewall: true,
            heap_guard: false,
            shadow_stack: false,
        }
    }

    /// Memory Firewall plus the Shadow Stack.
    pub fn firewall_and_shadow_stack() -> Self {
        MonitorConfig {
            memory_firewall: true,
            heap_guard: false,
            shadow_stack: true,
        }
    }

    /// Memory Firewall plus Heap Guard.
    pub fn firewall_and_heap_guard() -> Self {
        MonitorConfig {
            memory_firewall: true,
            heap_guard: true,
            shadow_stack: false,
        }
    }

    /// The full Red Team configuration: Memory Firewall + Heap Guard + Shadow Stack.
    pub fn full() -> Self {
        MonitorConfig {
            memory_firewall: true,
            heap_guard: true,
            shadow_stack: true,
        }
    }

    /// A short label for reports ("MF", "MF+HG+SS", ...).
    pub fn label(&self) -> String {
        if !self.memory_firewall && !self.heap_guard && !self.shadow_stack {
            return "bare".to_string();
        }
        let mut parts = Vec::new();
        if self.memory_firewall {
            parts.push("MF");
        }
        if self.heap_guard {
            parts.push("HG");
        }
        if self.shadow_stack {
            parts.push("SS");
        }
        parts.join("+")
    }
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig::full()
    }
}

/// The class of failure a monitor detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailureKind {
    /// Memory Firewall: a control transfer targeted an address outside the loaded code.
    IllegalControlTransfer {
        /// The illegal target.
        target: Addr,
    },
    /// Heap Guard: a write was about to clobber an allocation-boundary canary.
    OutOfBoundsWrite {
        /// The heap address of the attempted write.
        addr: Addr,
    },
}

impl FailureKind {
    /// A short name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            FailureKind::IllegalControlTransfer { .. } => "illegal-control-transfer",
            FailureKind::OutOfBoundsWrite { .. } => "out-of-bounds-write",
        }
    }
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureKind::IllegalControlTransfer { target } => {
                write!(f, "illegal control transfer to 0x{target:x}")
            }
            FailureKind::OutOfBoundsWrite { addr } => {
                write!(f, "out-of-bounds write at 0x{addr:x}")
            }
        }
    }
}

/// One frame of the Shadow Stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StackFrame {
    /// The entry address of the called procedure.
    pub proc_entry: Addr,
    /// The address of the call instruction.
    pub call_site: Addr,
    /// The return address pushed by the call.
    pub return_addr: Addr,
}

/// A failure detected by a monitor, as reported to ClearView.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Failure {
    /// What was detected.
    pub kind: FailureKind,
    /// The program counter at which the monitor detected the failure.
    pub location: Addr,
    /// The Shadow Stack at the time of the failure, innermost frame last. Empty when the
    /// Shadow Stack is disabled.
    pub call_stack: Vec<StackFrame>,
}

impl Failure {
    /// The key ClearView uses to distinguish failures from one another: the failure
    /// location (Section 3.2, "all ClearView patches are applied in response to a
    /// specific failure as identified by the failure location").
    pub fn failure_id(&self) -> Addr {
        self.location
    }

    /// The procedure entries on the call stack, innermost first, starting with the
    /// procedure containing the failure location (when known).
    pub fn procedures_innermost_first(&self) -> Vec<Addr> {
        self.call_stack.iter().rev().map(|f| f.proc_entry).collect()
    }
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} detected at 0x{:x}", self.kind, self.location)
    }
}

/// The auxiliary shadow call stack (Section 2.3).
///
/// Maintained by call/return instrumentation rather than by walking the native stack,
/// because the native stack may be corrupted precisely when a failure occurs.
#[derive(Debug, Clone, Default)]
pub struct ShadowStack {
    frames: Vec<StackFrame>,
    /// Number of push/pop operations performed (cost model).
    pub ops: u64,
}

impl ShadowStack {
    /// An empty shadow stack.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a call.
    pub fn push(&mut self, frame: StackFrame) {
        self.frames.push(frame);
        self.ops += 1;
    }

    /// Record a return. Returns the popped frame, if any. A return that does not match
    /// the innermost frame (possible after stack corruption) still pops one frame —
    /// best effort, as in the real system.
    pub fn pop(&mut self) -> Option<StackFrame> {
        self.ops += 1;
        self.frames.pop()
    }

    /// The current frames, outermost first.
    pub fn frames(&self) -> &[StackFrame] {
        &self.frames
    }

    /// Current call depth.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_labels() {
        assert_eq!(MonitorConfig::bare().label(), "bare");
        assert_eq!(MonitorConfig::memory_firewall_only().label(), "MF");
        assert_eq!(MonitorConfig::firewall_and_shadow_stack().label(), "MF+SS");
        assert_eq!(MonitorConfig::firewall_and_heap_guard().label(), "MF+HG");
        assert_eq!(MonitorConfig::full().label(), "MF+HG+SS");
        assert_eq!(MonitorConfig::default(), MonitorConfig::full());
    }

    #[test]
    fn failure_display_and_id() {
        let f = Failure {
            kind: FailureKind::IllegalControlTransfer { target: 0x20010 },
            location: 0x1040,
            call_stack: vec![],
        };
        assert_eq!(f.failure_id(), 0x1040);
        assert!(f.to_string().contains("0x1040"));
        assert!(f.to_string().contains("0x20010"));
    }

    #[test]
    fn shadow_stack_push_pop() {
        let mut ss = ShadowStack::new();
        let f1 = StackFrame {
            proc_entry: 0x1000,
            call_site: 0x1100,
            return_addr: 0x1102,
        };
        let f2 = StackFrame {
            proc_entry: 0x1200,
            call_site: 0x1010,
            return_addr: 0x1012,
        };
        ss.push(f1);
        ss.push(f2);
        assert_eq!(ss.depth(), 2);
        assert_eq!(ss.pop(), Some(f2));
        assert_eq!(ss.pop(), Some(f1));
        assert_eq!(ss.pop(), None);
        assert_eq!(ss.ops, 5);
    }

    #[test]
    fn procedures_innermost_first() {
        let f = Failure {
            kind: FailureKind::OutOfBoundsWrite { addr: 0x20000 },
            location: 0x1040,
            call_stack: vec![
                StackFrame {
                    proc_entry: 0x1000,
                    call_site: 0x1004,
                    return_addr: 0x1006,
                },
                StackFrame {
                    proc_entry: 0x1100,
                    call_site: 0x1104,
                    return_addr: 0x1106,
                },
            ],
        };
        assert_eq!(f.procedures_innermost_first(), vec![0x1100, 0x1000]);
    }
}
