//! Property-based parity: the interned/columnar [`LearningFrontend`] must produce an
//! `InvariantDatabase` **equal** (invariants, order, and learning counters) to the
//! retained straightforward [`ReferenceFrontend`] on randomized programs and page
//! batches.
//!
//! Programs are generated as a soup of operations assembled with [`ProgramBuilder`]:
//! register arithmetic (pair and dedup fodder), forward conditional branches
//! (multi-block CFGs), direct calls to helpers (stack-pointer offsets), masked
//! indirect calls through a function-pointer table (one-of invariants and pointer
//! classification), and allocator/copy intrinsics (lower bounds, and — with an
//! undersized allocation — Heap Guard failures that exercise the discard path).
//! Every branch is forward and every helper returns, so runs terminate; some runs
//! are discarded deliberately to cover both commit and discard on both frontends.

use cv_inference::{LearningFrontend, ReferenceFrontend};
use cv_isa::{BinaryImage, Cond, MemRef, Operand, Port, ProgramBuilder, Reg};
use cv_runtime::{EnvConfig, ManagedExecutionEnvironment};
use proptest::prelude::*;

/// General-purpose registers the generator plays with (never esp/ebp: the soup must
/// not corrupt the stack).
const REGS: [Reg; 6] = [Reg::Eax, Reg::Ebx, Reg::Ecx, Reg::Edx, Reg::Esi, Reg::Edi];

#[derive(Debug, Clone, Copy)]
enum Src {
    Reg(Reg),
    Imm(u32),
}

impl From<Src> for Operand {
    fn from(s: Src) -> Operand {
        match s {
            Src::Reg(r) => Operand::Reg(r),
            Src::Imm(v) => Operand::Imm(v),
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Op {
    /// `add`/`sub`/`and`/`mul`/`cmp` on registers — single-variable and pair samples.
    Arith { kind: u8, dst: Reg, src: Src },
    /// `mov dst, src` — equal-variable dedup fodder when src is a register.
    Mov { dst: Reg, src: Src },
    /// `cmp reg, imm` + forward `jcc` skipping the next `skip` ops — block edges.
    Branch {
        reg: Reg,
        imm: u32,
        cond: Cond,
        skip: u8,
    },
    /// Direct call to helper 0 or 1 — call-stack and sp-offset coverage.
    Call { which: bool },
    /// Masked dispatch through the function-pointer table — one-of at the call site.
    IndirectCall { sel: Reg },
    /// `alloc` two blocks and `copy` a masked length between them. An undersized
    /// destination makes Heap Guard fail the run (discard-path coverage).
    AllocCopy { undersized: bool },
    /// Render a register.
    Output { src: Reg },
}

fn arb_reg() -> impl Strategy<Value = Reg> {
    prop::sample::select(REGS.to_vec())
}

fn arb_src() -> impl Strategy<Value = Src> {
    prop_oneof![
        arb_reg().prop_map(Src::Reg),
        (0u32..200_000).prop_map(Src::Imm),
    ]
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    prop::sample::select(Cond::ALL.to_vec())
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..5, arb_reg(), arb_src()).prop_map(|(kind, dst, src)| Op::Arith { kind, dst, src }),
        (arb_reg(), arb_src()).prop_map(|(dst, src)| Op::Mov { dst, src }),
        (arb_reg(), 0u32..50, arb_cond(), 1u8..4).prop_map(|(reg, imm, cond, skip)| Op::Branch {
            reg,
            imm,
            cond,
            skip
        }),
        any::<bool>().prop_map(|which| Op::Call { which }),
        arb_reg().prop_map(|sel| Op::IndirectCall { sel }),
        any::<bool>().prop_map(|undersized| Op::AllocCopy { undersized }),
        arb_reg().prop_map(|src| Op::Output { src }),
    ]
}

/// Assemble the op soup into a complete image: inputs, the ops (with all branch
/// labels bound), a render + halt, two helpers, and the indirect-call table.
fn assemble(ops: &[Op]) -> BinaryImage {
    let mut b = ProgramBuilder::new();
    let main = b.function("main");
    let h0 = b.new_label("h0");
    let h1 = b.new_label("h1");
    let vtable = b.data_here();

    b.input(Reg::Eax, Port::Input);
    b.input(Reg::Ecx, Port::Input);
    b.input(Reg::Ebx, Port::Input);

    // Forward-branch labels waiting to be bound: (label, ops still to skip).
    let mut pending: Vec<(cv_isa::Label, u8)> = Vec::new();
    for op in ops {
        match *op {
            Op::Arith { kind, dst, src } => {
                let src: Operand = src.into();
                match kind {
                    0 => b.add(dst, src),
                    1 => b.sub(dst, src),
                    2 => b.and(dst, src),
                    3 => b.mul(dst, src),
                    _ => b.cmp(dst, src),
                };
            }
            Op::Mov { dst, src } => {
                b.mov(dst, Operand::from(src));
            }
            Op::Branch {
                reg,
                imm,
                cond,
                skip,
            } => {
                b.cmp(reg, imm);
                let label = b.new_label("skip");
                b.jcc(cond, label);
                // +1 because the countdown below also runs for this very op; the
                // label then binds after `skip` *further* ops, as documented.
                pending.push((label, skip + 1));
            }
            Op::Call { which } => {
                b.call(if which { h1 } else { h0 });
            }
            Op::IndirectCall { sel } => {
                b.mov(Reg::Edx, sel);
                b.and(Reg::Edx, 1u32);
                b.mov(
                    Reg::Edi,
                    Operand::Mem(MemRef {
                        base: None,
                        index: Some(Reg::Edx),
                        scale: 1,
                        disp: vtable as i32,
                    }),
                );
                b.call_indirect(Reg::Edi);
            }
            Op::AllocCopy { undersized } => {
                b.alloc(Reg::Edi, if undersized { 2u32 } else { 16u32 });
                b.alloc(Reg::Esi, 16u32);
                b.mov(Reg::Edx, Reg::Ecx);
                b.and(Reg::Edx, 7u32);
                b.copy(Reg::Edi, Reg::Esi, Reg::Edx);
            }
            Op::Output { src } => {
                b.output(src, Port::Render);
            }
        }
        // Close any forward branches whose skip window just elapsed.
        for (label, left) in &mut pending {
            *left -= 1;
            if *left == 0 {
                b.bind(*label);
            }
        }
        pending.retain(|(_, left)| *left > 0);
    }
    for (label, _) in pending {
        b.bind(label);
    }
    b.output(Reg::Eax, Port::Render);
    b.halt();

    b.bind(h0);
    b.add(Reg::Eax, 1u32);
    b.ret();
    b.bind(h1);
    b.sub(Reg::Ecx, 3u32);
    b.ret();
    b.data_code_ref(h0);
    b.data_code_ref(h1);
    b.set_entry(main);
    b.build().expect("generated program assembles")
}

/// Run both frontends over the same pages and demand identical inferred databases.
fn assert_parity(image: BinaryImage, pages: &[Vec<u32>]) {
    let mut env_fast = ManagedExecutionEnvironment::new(image.clone(), EnvConfig::default());
    let mut env_ref = ManagedExecutionEnvironment::new(image.clone(), EnvConfig::default());
    let mut fast = LearningFrontend::new(image.clone());
    let mut reference = ReferenceFrontend::new(image);
    for (k, page) in pages.iter().enumerate() {
        let a = env_fast.run_with_tracer(page, &mut fast);
        let b = env_ref.run_with_tracer(page, &mut reference);
        assert_eq!(a.status, b.status, "the two environments must agree");
        assert_eq!(fast.pending_events(), reference.pending_events());
        // Discard failed runs (the Section 3.1 rule) and, additionally, every third
        // run — covering discard-after-success on both implementations.
        if a.is_completed() && k % 3 != 2 {
            fast.commit_run();
            reference.commit_run();
        } else {
            fast.discard_run();
            reference.discard_run();
        }
    }
    assert_eq!(fast.events_processed(), reference.events_processed());
    let fast_db = fast.infer();
    let ref_db = reference.infer();
    assert_eq!(
        fast_db, ref_db,
        "interned/columnar frontend diverged from the reference implementation"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn randomized_programs_learn_identical_databases(
        ops in prop::collection::vec(arb_op(), 1..24),
        pages in prop::collection::vec(prop::collection::vec(0u32..100_000, 0..5), 1..6),
    ) {
        assert_parity(assemble(&ops), &pages);
    }
}

/// Deterministic spot check: interleaved procedure discovery. The first page runs
/// with an empty procedure database (no pair schedules apply), later pages after
/// discovery — the schedule cache must invalidate and re-resolve.
#[test]
fn parity_across_procedure_discovery() {
    let ops = [
        Op::Arith {
            kind: 0,
            dst: Reg::Eax,
            src: Src::Reg(Reg::Ecx),
        },
        Op::Call { which: false },
        Op::IndirectCall { sel: Reg::Eax },
        Op::Branch {
            reg: Reg::Ecx,
            imm: 10,
            cond: Cond::Lt,
            skip: 2,
        },
        Op::AllocCopy { undersized: false },
        Op::Arith {
            kind: 4,
            dst: Reg::Ecx,
            src: Src::Reg(Reg::Ecx),
        },
        Op::Output { src: Reg::Eax },
    ];
    let pages: Vec<Vec<u32>> = vec![vec![4, 9, 1], vec![0, 3, 2], vec![7, 20, 5], vec![1, 1, 1]];
    assert_parity(assemble(&ops), &pages);
}
