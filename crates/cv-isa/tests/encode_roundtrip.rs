//! Property-based tests: every representable instruction survives an encode/decode
//! round trip, and arbitrary instruction sequences decode back to themselves with
//! consistent addresses.

use cv_isa::{decode, decode_all, encode, Cond, Inst, MemRef, Operand, Port, Reg};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    prop::sample::select(Reg::ALL.to_vec())
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    prop::sample::select(Cond::ALL.to_vec())
}

fn arb_port() -> impl Strategy<Value = Port> {
    prop::sample::select(Port::ALL.to_vec())
}

fn arb_memref() -> impl Strategy<Value = MemRef> {
    (
        prop::option::of(arb_reg()),
        prop::option::of(arb_reg()),
        prop::sample::select(vec![1u8, 2, 4, 8]),
        -1_000_000i32..1_000_000i32,
    )
        .prop_map(|(base, index, scale, disp)| MemRef {
            base,
            index,
            scale,
            disp,
        })
}

fn arb_operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        arb_reg().prop_map(Operand::Reg),
        any::<u32>().prop_map(Operand::Imm),
        arb_memref().prop_map(Operand::Mem),
    ]
}

fn arb_writable_operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        arb_reg().prop_map(Operand::Reg),
        arb_memref().prop_map(Operand::Mem),
    ]
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (arb_writable_operand(), arb_operand()).prop_map(|(dst, src)| Inst::Mov { dst, src }),
        (arb_reg(), arb_memref()).prop_map(|(dst, mem)| Inst::Lea { dst, mem }),
        (arb_writable_operand(), arb_operand()).prop_map(|(dst, src)| Inst::Add { dst, src }),
        (arb_writable_operand(), arb_operand()).prop_map(|(dst, src)| Inst::Sub { dst, src }),
        (arb_reg(), arb_operand()).prop_map(|(dst, src)| Inst::Mul { dst, src }),
        (arb_writable_operand(), arb_operand()).prop_map(|(dst, src)| Inst::And { dst, src }),
        (arb_writable_operand(), arb_operand()).prop_map(|(dst, src)| Inst::Or { dst, src }),
        (arb_writable_operand(), arb_operand()).prop_map(|(dst, src)| Inst::Xor { dst, src }),
        (arb_writable_operand(), arb_operand()).prop_map(|(dst, src)| Inst::Shl { dst, src }),
        (arb_writable_operand(), arb_operand()).prop_map(|(dst, src)| Inst::Shr { dst, src }),
        (arb_operand(), arb_operand()).prop_map(|(a, b)| Inst::Cmp { a, b }),
        (arb_operand(), arb_operand()).prop_map(|(a, b)| Inst::Test { a, b }),
        any::<u32>().prop_map(|target| Inst::Jmp { target }),
        arb_operand().prop_map(|target| Inst::JmpIndirect { target }),
        (arb_cond(), any::<u32>()).prop_map(|(cond, target)| Inst::Jcc { cond, target }),
        any::<u32>().prop_map(|target| Inst::Call { target }),
        arb_operand().prop_map(|target| Inst::CallIndirect { target }),
        Just(Inst::Ret),
        arb_operand().prop_map(|src| Inst::Push { src }),
        arb_writable_operand().prop_map(|dst| Inst::Pop { dst }),
        (arb_operand(), arb_reg()).prop_map(|(size, dst)| Inst::Alloc { size, dst }),
        arb_operand().prop_map(|ptr| Inst::Free { ptr }),
        (arb_operand(), arb_operand(), arb_operand()).prop_map(|(dst, src, len)| Inst::Copy {
            dst,
            src,
            len
        }),
        (arb_reg(), arb_port()).prop_map(|(dst, port)| Inst::In { dst, port }),
        (arb_operand(), arb_port()).prop_map(|(src, port)| Inst::Out { src, port }),
        Just(Inst::Halt),
        Just(Inst::Nop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn encode_decode_round_trip(inst in arb_inst()) {
        let words = encode(inst);
        prop_assert!(!words.is_empty());
        prop_assert!(words.len() <= 8);
        let (decoded, len) = decode(&words, 0).expect("decode");
        prop_assert_eq!(decoded, inst);
        prop_assert_eq!(len as usize, words.len());
    }

    #[test]
    fn sequences_round_trip_with_consistent_addresses(insts in prop::collection::vec(arb_inst(), 1..64)) {
        let base = 0x1000u32;
        let mut words = Vec::new();
        let mut addrs = Vec::new();
        for inst in &insts {
            addrs.push(base + words.len() as u32);
            words.extend(encode(*inst));
        }
        let decoded = decode_all(&words, base).expect("decode_all");
        prop_assert_eq!(decoded.len(), insts.len());
        for (d, (inst, addr)) in decoded.iter().zip(insts.iter().zip(addrs.iter())) {
            prop_assert_eq!(d.inst, *inst);
            prop_assert_eq!(d.addr, *addr);
            prop_assert_eq!(d.next_addr(), d.addr + d.len);
        }
    }

    #[test]
    fn truncation_never_panics(inst in arb_inst(), cut in 0usize..8) {
        let words = encode(inst);
        let cut = cut.min(words.len());
        let truncated = &words[..words.len() - cut];
        // Either decodes (cut == 0) or reports an error; never panics.
        let _ = decode(truncated, 0);
    }
}
