//! End-to-end warm start: a fleet learns, repairs an exploit, and checkpoints;
//! a brand-new fleet restored from the encoded snapshot is Protected immediately —
//! zero learning-mode replay, zero re-checking — and every member survives its
//! first exposure. Also proves the delta-sync size criterion: when almost nothing
//! changed since the base checkpoint, the delta is strictly smaller than a full
//! snapshot.

use clearview::apps::{learning_suite, red_team_exploits, Browser};
use clearview::core::{ClearViewConfig, Phase};
use clearview::fleet::{DeltaSnapshot, Fleet, FleetConfig, Presentation, Snapshot};

const NODES: usize = 64;

#[test]
fn a_fleet_restored_from_snapshot_is_protected_without_replaying_learning() {
    let browser = Browser::build();
    let config = ClearViewConfig::default();
    let mut fleet = Fleet::new(browser.image.clone(), config, FleetConfig::new(NODES));
    fleet.distributed_learning(&learning_suite());

    let exploit = red_team_exploits(&browser)
        .into_iter()
        .find(|e| e.bugzilla == 290162)
        .unwrap();
    let location = browser.sym("vuln_290162_call");

    // Drive the live fleet to immunity the normal way.
    for _ in 0..12 {
        fleet.run_epoch(&[Presentation::new(0, exploit.page())]);
        if fleet.is_protected_against(location) {
            break;
        }
    }
    assert!(fleet.is_protected_against(location));

    // Checkpoint, push the snapshot through its binary encoding, and restore a
    // brand-new fleet from the decoded bytes — the full durability round trip.
    let snapshot = fleet.checkpoint();
    let bytes = snapshot.encode();
    assert_eq!(fleet.metrics().snapshot_bytes_last, bytes.len() as u64);
    let decoded = Snapshot::decode(&bytes).expect("checkpoint decodes");
    assert_eq!(decoded, snapshot);

    let mut restored = Fleet::from_snapshot(
        browser.image.clone(),
        config,
        FleetConfig::new(NODES),
        &decoded,
    );

    // Protected immediately: before any epoch runs, with zero learning replay.
    assert!(
        restored.is_protected_against(location),
        "restored fleet must be Protected before running anything: {:?}",
        restored.phase_of(location)
    );
    assert_eq!(restored.phase_of(location), Some(Phase::Protected));
    assert_eq!(
        restored.metrics().learning_pages,
        0,
        "warm start must not replay learning"
    );
    assert!(
        restored.model().invariants.len() > 50,
        "the learned baseline came from the snapshot"
    );

    // Every member — none of which ever saw the exploit in this process —
    // survives its first exposure through the snapshot-installed repair.
    let verify: Vec<Presentation> = (0..NODES)
        .map(|node| Presentation::new(node, exploit.page()))
        .collect();
    let outcome = restored.run_epoch(&verify);
    assert_eq!(
        outcome.completed(),
        NODES,
        "all members immune after restore"
    );
    assert_eq!(outcome.blocked(), 0);
}

#[test]
fn delta_sync_is_strictly_smaller_when_little_changed() {
    let browser = Browser::build();
    let mut fleet = Fleet::new(
        browser.image.clone(),
        ClearViewConfig::default(),
        FleetConfig::new(16),
    );
    fleet.distributed_learning(&learning_suite());
    let base = fleet.checkpoint();
    assert!(base.invariants.len() > 50);

    // A repair lands (plan changes) but the invariant baseline stays put —
    // far under the <10% change bar.
    let exploit = red_team_exploits(&browser)
        .into_iter()
        .find(|e| e.bugzilla == 290162)
        .unwrap();
    for _ in 0..12 {
        fleet.run_epoch(&[Presentation::new(0, exploit.page())]);
        if fleet.is_protected_against(browser.sym("vuln_290162_call")) {
            break;
        }
    }

    let delta = fleet.delta_since(&base);
    let current = fleet.checkpoint();
    let delta_bytes = delta.encode().len();
    let full_bytes = current.encode().len();
    let changed_fraction = delta.changed_entries() as f64 / current.invariants.len() as f64;
    assert!(
        changed_fraction < 0.10,
        "scenario changed {changed_fraction:.3} of entries, expected <10%"
    );
    assert!(
        delta_bytes < full_bytes,
        "delta ({delta_bytes} bytes) must be strictly smaller than full ({full_bytes} bytes)"
    );

    // The delta really does advance the base to the current state.
    let mut advanced = base.clone();
    advanced.apply_delta(&delta).unwrap();
    assert_eq!(advanced, current);
    // And it round-trips through its own encoding.
    assert_eq!(DeltaSnapshot::decode(&delta.encode()).unwrap(), delta);
}
