//! # cv-patch — invariant-check and repair patches
//!
//! ClearView responds to a failure in two patching waves (Sections 2.4–2.5 of the
//! paper): first it deploys *invariant-checking* patches that observe whether candidate
//! correlated invariants are satisfied or violated; then, once correlated invariants are
//! identified, it deploys *candidate repair* patches that enforce them — changing
//! register or memory values, skipping calls, or returning early from the enclosing
//! procedure.
//!
//! This crate compiles both kinds of patches into [`cv_runtime::Hook`]s:
//!
//! * [`CheckPatch`] — check an invariant at its check address (with an auxiliary store
//!   hook for two-variable invariants) and emit satisfied/violated observations.
//! * [`RepairPatch`] / [`RepairStrategy`] — the enforcement patches of Section 2.5, with
//!   [`RepairPatch::candidates`] generating every candidate repair for an invariant.
//! * [`install_hooks`] / [`uninstall`] / [`PatchHandle`] — apply and remove patches from
//!   a running managed environment (code-cache block ejection underneath).
//! * [`PatchCostModel`] / [`InvariantCounts`] — the simulated build/install costs used
//!   by the Table 3 reproduction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod check;
mod cost;
mod handle;
mod repair;

pub use check::{AuxStoreHook, CheckHook, CheckPatch};
pub use cost::{InvariantCounts, PatchCostModel};
pub use handle::{install_hooks, uninstall, PatchHandle};
pub use repair::{RepairHook, RepairPatch, RepairStrategy};
