//! Regenerates the learning-overhead result of Section 4.4.1 — loading the learning
//! pages with the Daikon front end attached is orders of magnitude slower than loading
//! them without learning (the paper reports 5.2 s vs 1600 s, a factor of ≈300) — and
//! tracks the *hot-path* performance of this reproduction's front end: events/sec,
//! ns/event, and a heap-allocation proxy for the tracing path, compared against the
//! retained straightforward `ReferenceFrontend`.
//!
//! Run with: `cargo run --release -p cv-bench --bin learning_overhead [-- --json] [-- --rounds N]`
//!
//! `--json` also writes a `BENCH_learning.json` record (committed alongside
//! `BENCH_fleet.json` so the perf trajectory is tracked over time).
//! `--rounds N` replays the captured stream N times per front end (after one
//! untimed warmup pass each); the flat `events_per_second` keys become medians
//! and a `"spread"` object carries median/min/max/MAD/IQR plus raw samples —
//! the shape `perf_gate` ingests.

use cv_apps::{learning_suite, Browser};
use cv_bench::print_table;
use cv_inference::{InvariantDatabase, LearningFrontend, ReferenceFrontend};
use cv_isa::Addr;
use cv_perf::MetricStats;
use cv_runtime::{
    CostModel, EnvConfig, ExecEvent, ExecutionStats, ManagedExecutionEnvironment, Tracer,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A [`System`] wrapper that counts every allocation — the "allocations proxy" used
/// to demonstrate that the tracing path performs no per-event heap allocation.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers entirely to `System`; the counter is a relaxed atomic increment.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// One tracer callback in original delivery order — replaying a captured stream must
/// interleave block discoveries, call observations, and events exactly as the live
/// environment delivered them (procedure discovery is order-sensitive).
enum Step {
    Block(Addr),
    Call(Addr, Addr),
    Event(ExecEvent),
}

/// The captured trace of one run.
struct CapturedRun {
    steps: Vec<Step>,
    completed: bool,
}

#[derive(Default)]
struct CaptureTracer {
    steps: Vec<Step>,
}

impl Tracer for CaptureTracer {
    fn on_block_first_execution(&mut self, block_start: Addr) {
        self.steps.push(Step::Block(block_start));
    }

    fn on_inst(&mut self, event: &ExecEvent) {
        self.steps.push(Step::Event(event.clone()));
    }

    fn on_call(&mut self, call_site: Addr, target: Addr) {
        self.steps.push(Step::Call(call_site, target));
    }
}

/// Execute the workload once, capturing every tracer callback per run.
fn capture(browser: &Browser, pages: &[Vec<u32>]) -> Vec<CapturedRun> {
    let mut env = ManagedExecutionEnvironment::new(browser.image.clone(), EnvConfig::default());
    pages
        .iter()
        .map(|page| {
            let mut tracer = CaptureTracer::default();
            let completed = env.run_with_tracer(page, &mut tracer).is_completed();
            CapturedRun {
                steps: tracer.steps,
                completed,
            }
        })
        .collect()
}

/// The outcome of one front-end pass (live or replayed).
struct Pass {
    /// Wall seconds of the measured loop.
    seconds: f64,
    /// Events committed into the model.
    events: u64,
    /// Heap allocations during the loop.
    allocs: u64,
    /// The inferred database.
    db: InvariantDatabase,
}

/// Replay the captured stream through a front end, timing **only the learning data
/// plane** (on_inst / discovery callbacks / commit) — no guest execution. This is
/// the events/sec measurement: what one traced instruction costs the front end.
fn replay<F, C, D, I>(runs: &[CapturedRun], mut fe: F, commit: C, discard: D, finish: I) -> Pass
where
    C: Fn(&mut F),
    D: Fn(&mut F),
    I: Fn(&F) -> (u64, InvariantDatabase),
    F: Tracer,
{
    let allocs_before = allocations();
    let start = Instant::now();
    for run in runs {
        for step in &run.steps {
            match step {
                Step::Block(b) => fe.on_block_first_execution(*b),
                Step::Call(site, target) => fe.on_call(*site, *target),
                Step::Event(ev) => fe.on_inst(ev),
            }
        }
        if run.completed {
            commit(&mut fe);
        } else {
            discard(&mut fe);
        }
    }
    let seconds = start.elapsed().as_secs_f64();
    let allocs = allocations() - allocs_before;
    let (events, db) = finish(&fe);
    Pass {
        seconds,
        events,
        allocs,
        db,
    }
}

/// Replay with the interned/columnar front end.
fn fast_replay(browser: &Browser, runs: &[CapturedRun]) -> Pass {
    replay(
        runs,
        LearningFrontend::new(browser.image.clone()),
        |fe| fe.commit_run(),
        |fe| fe.discard_run(),
        |fe| (fe.events_processed(), fe.infer()),
    )
}

/// Replay with the retained reference front end (the pre-optimization path).
fn reference_replay(browser: &Browser, runs: &[CapturedRun]) -> Pass {
    replay(
        runs,
        ReferenceFrontend::new(browser.image.clone()),
        |fe| fe.commit_run(),
        |fe| fe.discard_run(),
        |fe| (fe.events_processed(), fe.infer()),
    )
}

/// One *live* traced learning pass (guest execution included) with the interned
/// front end — the Section 4.4.1 learning-overhead measurement.
fn live_pass(browser: &Browser, pages: &[Vec<u32>]) -> (f64, ExecutionStats) {
    let mut env = ManagedExecutionEnvironment::new(browser.image.clone(), EnvConfig::default());
    let mut fe = LearningFrontend::new(browser.image.clone());
    let start = Instant::now();
    for page in pages {
        if env.run_with_tracer(page, &mut fe).is_completed() {
            fe.commit_run();
        } else {
            fe.discard_run();
        }
    }
    (start.elapsed().as_secs_f64(), env.cumulative_stats())
}

/// Hot-path measurement repetitions of the learning suite: enough events that
/// per-suite one-time costs (code-cache warmup, table growth) do not dominate, on a
/// workload identical in shape to the paper's.
const REPEAT: usize = 20;

fn main() {
    let mut json = false;
    let mut rounds = 1usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--rounds" => {
                rounds = args
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .unwrap_or_else(|| panic!("--rounds requires a numeric argument"))
                    .max(1)
            }
            other => panic!("unknown option {other}"),
        }
    }
    let browser = Browser::build();
    let pages = learning_suite();
    let cost = CostModel::default();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // The hot-path workload: the learning suite repeated REPEAT times.
    let workload: Vec<Vec<u32>> = std::iter::repeat_with(|| pages.clone())
        .take(REPEAT)
        .flatten()
        .collect();

    // Without learning (the Section 4.4.1 baseline).
    let mut env = ManagedExecutionEnvironment::new(browser.image.clone(), EnvConfig::default());
    let wall_start = Instant::now();
    for page in &workload {
        env.run(page);
    }
    let untraced_wall = wall_start.elapsed().as_secs_f64();
    let untraced = env.cumulative_stats();

    // With learning, live (guest execution + front end).
    let (traced_wall, traced) = live_pass(&browser, &workload);

    // The front-end data plane in isolation: capture the event stream once, then
    // replay it through each front end — one untimed warmup pass each (the first
    // pass pays cold caches for everybody), then `rounds` timed passes whose
    // events/sec samples feed the spread statistics. Medians, not fastest-of-N:
    // one lucky round must not set the record.
    let warmups = 1usize;
    let runs = capture(&browser, &workload);
    let _ = fast_replay(&browser, &runs);
    let fast_passes: Vec<Pass> = (0..rounds).map(|_| fast_replay(&browser, &runs)).collect();
    let _ = reference_replay(&browser, &runs);
    let reference_passes: Vec<Pass> = (0..rounds)
        .map(|_| reference_replay(&browser, &runs))
        .collect();
    let fast = fast_passes.last().expect("at least one round");
    let reference = reference_passes.last().expect("at least one round");
    assert_eq!(
        fast.events, reference.events,
        "frontends must process identical events"
    );
    assert_eq!(
        fast.db, reference.db,
        "hot-path parity violated — benchmark is void"
    );
    for pass in fast_passes.iter().chain(&reference_passes) {
        assert_eq!(pass.events, fast.events, "replay must be deterministic");
    }

    let fast_rates: Vec<f64> = fast_passes
        .iter()
        .map(|p| p.events as f64 / p.seconds)
        .collect();
    let reference_rates: Vec<f64> = reference_passes
        .iter()
        .map(|p| p.events as f64 / p.seconds)
        .collect();
    let fast_stats = MetricStats::from_samples(&fast_rates);
    let reference_stats = MetricStats::from_samples(&reference_rates);
    let events_per_sec = fast_stats.median;
    let ns_per_event = 1e9 / events_per_sec;
    let frontend_seconds = fast.events as f64 / events_per_sec;
    let allocs_per_event = fast.allocs as f64 / fast.events as f64;
    let ref_events_per_sec = reference_stats.median;
    let reference_seconds = reference.events as f64 / ref_events_per_sec;
    let speedup = events_per_sec / ref_events_per_sec;

    let sim_ratio = cost.cost(&traced) / cost.cost(&untraced);
    let wall_ratio = traced_wall / untraced_wall;
    let rows = vec![
        vec![
            "Without learning".to_string(),
            format!("{:.0}", cost.cost(&untraced)),
            format!("{untraced_wall:.4}"),
            "1.0".to_string(),
            "1.0 (5.2 s)".to_string(),
        ],
        vec![
            "With learning (Daikon front end)".to_string(),
            format!("{:.0}", cost.cost(&traced)),
            format!("{traced_wall:.4}"),
            format!("{sim_ratio:.0}x / {wall_ratio:.1}x (sim/wall)"),
            "~300x (1600 s)".to_string(),
        ],
    ];
    print_table(
        &format!(
            "Learning overhead over {} learning pages ({}x suite, {} invariants learned)",
            workload.len(),
            REPEAT,
            fast.db.len()
        ),
        &[
            "Configuration",
            "Simulated cost",
            "Wall clock (s)",
            "Slowdown (measured)",
            "Slowdown (paper)",
        ],
        &rows,
    );
    print_table(
        "Front-end data plane (captured stream replayed; no guest execution)",
        &[
            "front end",
            "events/sec",
            "ns/event",
            "allocs/event",
            "speedup",
        ],
        &[
            vec![
                "reference (HashMap<Variable, _>)".into(),
                format!("{ref_events_per_sec:.0}"),
                format!("{:.1}", 1e9 / ref_events_per_sec),
                format!("{:.4}", reference.allocs as f64 / reference.events as f64),
                "1.00x".into(),
            ],
            vec![
                "interned/columnar".into(),
                format!("{events_per_sec:.0}"),
                format!("{ns_per_event:.1}"),
                format!("{allocs_per_event:.4}"),
                format!("{speedup:.2}x"),
            ],
        ],
    );
    println!(
        "\nLearning statistics: {} trace events, {} variables, {} invariants \
         ({} one-of, {} lower-bound, {} less-than, {} sp-offset), {} duplicates removed, {} pointers.",
        fast.db.stats.events_processed,
        fast.db.stats.variables_observed,
        fast.db.len(),
        fast.db.stats.one_of,
        fast.db.stats.lower_bound,
        fast.db.stats.less_than,
        fast.db.stats.sp_offset,
        fast.db.stats.duplicates_removed,
        fast.db.stats.pointers_classified,
    );

    if json {
        let spread_json = format!(
            "{{\n    \"events_per_second\": {},\n    \"reference_events_per_second\": {}\n  }}",
            fast_stats.to_json(),
            reference_stats.to_json(),
        );
        let record = format!(
            "{{\n  \"bench\": \"learning_overhead\",\n  \"cores\": {cores},\n  \"rounds\": {rounds},\n  \"warmups\": {warmups},\n  \"pages\": {},\n  \"events\": {},\n  \"invariants\": {},\n  \"frontend_seconds\": {frontend_seconds:.4},\n  \"events_per_second\": {events_per_sec:.1},\n  \"ns_per_event\": {ns_per_event:.1},\n  \"allocations\": {},\n  \"allocations_per_event\": {allocs_per_event:.5},\n  \"reference_seconds\": {reference_seconds:.4},\n  \"reference_events_per_second\": {ref_events_per_sec:.1},\n  \"reference_allocations_per_event\": {:.5},\n  \"speedup_vs_reference\": {speedup:.2},\n  \"untraced_seconds\": {untraced_wall:.4},\n  \"traced_seconds\": {traced_wall:.4},\n  \"slowdown_vs_untraced\": {wall_ratio:.1},\n  \"spread\": {spread_json}\n}}\n",
            workload.len(),
            fast.events,
            fast.db.len(),
            fast.allocs,
            reference.allocs as f64 / reference.events as f64,
        );
        std::fs::write("BENCH_learning.json", &record).expect("write BENCH_learning.json");
        println!("\nwrote BENCH_learning.json:\n{record}");
    }
}
