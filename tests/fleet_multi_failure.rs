//! The multi-failure manager-plane acceptance test: a 1,000-member fleet is hit by
//! **eight distinct exploits at eight distinct failure locations in the same epoch**,
//! every location reaches `Phase::Protected`, and the sharded-parallel manager's
//! final `BatchLog` is byte-identical to the sequential single-shard manager's — the
//! end-to-end proof that sharding the responder state by failure location changes
//! the manager's *latency*, never its *decisions*.

use clearview::apps::{
    expanded_learning_suite, red_team_exploits, Browser, Exploit, MULTI_FAILURE_TARGETS,
};
use clearview::core::{learn_model, ClearViewConfig, Phase};
use clearview::fleet::{Fleet, FleetConfig, Presentation};
use clearview::inference::LearnedModel;
use clearview::runtime::MonitorConfig;

const NODES: usize = 1_000;
const ATTACK_EPOCHS: u64 = 12;

/// The eight simultaneously attacked defects and their failure locations — the
/// canonical list shared with the `fleet_scale` benchmark (see
/// `cv_apps::MULTI_FAILURE_TARGETS` for the 311710/307259 exclusion rationale).
const TARGETS: [(u32, &str); 8] = MULTI_FAILURE_TARGETS;

fn community_model(browser: &Browser) -> LearnedModel {
    learn_model(
        &browser.image,
        &expanded_learning_suite(),
        MonitorConfig::full(),
    )
    .0
}

/// Run the fixed multi-failure attack scenario: every epoch, each of the eight
/// exploits is presented to two members (sixteen presentations per epoch, all eight
/// failure locations active simultaneously).
fn run_scenario(browser: &Browser, model: LearnedModel, config: FleetConfig) -> Fleet {
    let exploits: Vec<Exploit> = {
        let all = red_team_exploits(browser);
        TARGETS
            .iter()
            .map(|(bug, _)| all.iter().find(|e| e.bugzilla == *bug).unwrap().clone())
            .collect()
    };
    let mut fleet = Fleet::new(
        browser.image.clone(),
        ClearViewConfig::with_stack_walk(2),
        config,
    );
    fleet.set_model(model);
    for _ in 0..ATTACK_EPOCHS {
        let batch: Vec<Presentation> = exploits
            .iter()
            .enumerate()
            .flat_map(|(k, exploit)| {
                [5 * k, 5 * k + 500]
                    .into_iter()
                    .map(move |node| Presentation::new(node, exploit.page()))
            })
            .collect();
        fleet.run_epoch(&batch);
    }
    fleet
}

#[test]
fn eight_simultaneous_exploits_immunize_a_thousand_member_fleet() {
    let browser = Browser::build();
    let model = community_model(&browser);

    let mut fleet = run_scenario(&browser, model.clone(), FleetConfig::new(NODES));

    // Every one of the eight failure locations reached Protected.
    for (bug, sym) in TARGETS {
        let location = browser.sym(sym);
        assert_eq!(
            fleet.phase_of(location),
            Some(Phase::Protected),
            "exploit {bug} at {sym} did not reach Protected"
        );
        let record = fleet
            .metrics()
            .immunity(location)
            .expect("immunity record for an attacked location");
        assert_eq!(record.first_failure_epoch, 1);
        assert!(record.epochs_to_immunity().is_some());
    }

    // The sequential, single-shard manager (the seed shape) makes byte-identical
    // decisions for the same scenario.
    let sequential = run_scenario(
        &browser,
        model,
        FleetConfig::new(NODES).sequential().with_manager_shards(1),
    );
    assert_eq!(
        sequential.log(),
        fleet.log(),
        "sharded and sequential managers diverged on the multi-failure scenario"
    );
    assert_eq!(
        format!("{:?}", sequential.log()),
        format!("{:?}", fleet.log()),
        "logs must be byte-identical"
    );
    assert_eq!(
        format!("{:?}", sequential.reports()),
        format!("{:?}", fleet.reports())
    );
    assert_eq!(fleet.reports().len(), TARGETS.len());

    // Every member — almost all never attacked — survives its first exposure to
    // whichever of the eight exploits it draws.
    let exploits = red_team_exploits(&browser);
    let verify: Vec<Presentation> = (0..NODES)
        .map(|node| {
            let (bug, _) = TARGETS[node % TARGETS.len()];
            let exploit = exploits.iter().find(|e| e.bugzilla == bug).unwrap();
            Presentation::new(node, exploit.page())
        })
        .collect();
    let outcome = fleet.run_epoch(&verify);
    assert_eq!(
        outcome.completed(),
        NODES,
        "all {NODES} members are immune to all eight exploits"
    );
    assert_eq!(outcome.blocked(), 0);
}
