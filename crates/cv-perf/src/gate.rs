//! The changepoint/trend verdict engine.
//!
//! One-shot thresholding against a single committed baseline (the legacy
//! `bench_gate`) has two failure modes: slow drift that stays inside the
//! tolerance every step but compounds across PRs, and a tolerance wide enough
//! (30%) to be deaf to real 15% regressions. This engine replaces it with two
//! rules evaluated against the *trailing history window* of comparable
//! records:
//!
//! 1. **Changepoint** — the fresh median falls outside `k · noise` of the
//!    window median, where `noise` is the larger of the commit-to-commit MAD
//!    (how much the median itself moves between commits), the typical
//!    within-run MAD (round-to-round jitter), and a relative floor (so a
//!    dead-quiet history cannot make the band vanish and alarm on harmless
//!    wobble). Medians and MADs — not means and standard deviations — so a
//!    single outlier commit in the window cannot recenter or inflate the band.
//! 2. **Monotone drift** — the last `drift_len` window medians plus the fresh
//!    one move strictly in the bad direction and lose more than `drift_frac`
//!    in total, even if every individual step is inside the changepoint band.
//!
//! Records captured under a different configuration (flags or core count) are
//! *skipped with a warning*, never compared: a 1-core container median versus
//! a 4-core runner median is not a regression, it is a category error.

use crate::history::History;
use crate::record::PerfRecord;
use crate::stats::{mad, median, MAD_SCALE};

/// Which way is good for a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Throughputs: a *drop* is a regression.
    HigherIsBetter,
    /// Latencies / byte counts: a *rise* is a regression.
    LowerIsBetter,
}

/// Tunables for the verdict engine.
#[derive(Debug, Clone)]
pub struct GateConfig {
    /// Band half-width in scaled-MAD units (the "sigmas" of the gate).
    pub k: f64,
    /// Relative noise floor: the band is never narrower than
    /// `k · floor_frac · |window median|`.
    pub floor_frac: f64,
    /// Trailing window size (comparable records considered).
    pub window: usize,
    /// Minimum comparable records before the changepoint rule arms; below
    /// this the verdict is [`Outcome::ShortHistory`] (a pass with a note —
    /// the legacy single-baseline gate still guards the bootstrap phase).
    pub min_history: usize,
    /// History medians (plus the fresh one) the drift rule looks at.
    pub drift_len: usize,
    /// Total relative loss over the drift run that fails the gate.
    pub drift_frac: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            k: 4.0,
            floor_frac: 0.02,
            window: 8,
            min_history: 3,
            drift_len: 4,
            drift_frac: 0.10,
        }
    }
}

/// What the engine concluded for one gated key.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Inside the band, no drift.
    Pass,
    /// The fresh median crossed the `k·noise` band edge at `limit`.
    Changepoint {
        /// The band edge the fresh median crossed.
        limit: f64,
    },
    /// Monotone movement in the bad direction across the drift run.
    Drift {
        /// Total relative change over the run (positive = loss).
        total_frac: f64,
        /// Number of strictly-bad steps observed.
        steps: usize,
    },
    /// No comparable history at all — pass with a warning.
    NoHistory,
    /// Fewer comparable records than `min_history` — pass with a note.
    ShortHistory {
        /// Comparable records found.
        have: usize,
    },
    /// The fresh record does not carry the gated key — format drift, a failure.
    MissingMetric,
}

/// The full verdict for one gated key, with everything `--explain` prints.
#[derive(Debug, Clone)]
pub struct KeyVerdict {
    /// The bench the key lives in.
    pub bench: String,
    /// The gated metric key.
    pub key: String,
    /// Which way is good.
    pub direction: Direction,
    /// The fresh multi-round median (None when the key is missing).
    pub fresh_median: Option<f64>,
    /// Per-window-record `(commit, median)`, oldest first.
    pub history: Vec<(String, f64)>,
    /// Median of the window medians (the gate's center), if a window existed.
    pub window_median: Option<f64>,
    /// The noise estimate behind the band, if a window existed.
    pub noise: Option<f64>,
    /// Same-bench records skipped as configuration-mismatched.
    pub skipped_mismatched: usize,
    /// The conclusion.
    pub outcome: Outcome,
}

impl KeyVerdict {
    /// Whether this verdict fails the gate.
    pub fn is_failure(&self) -> bool {
        matches!(
            self.outcome,
            Outcome::Changepoint { .. } | Outcome::Drift { .. } | Outcome::MissingMetric
        )
    }

    /// Which rule fired (or why the key passed), one word for the table.
    pub fn rule(&self) -> &'static str {
        match self.outcome {
            Outcome::Pass => "pass",
            Outcome::Changepoint { .. } => "CHANGEPOINT",
            Outcome::Drift { .. } => "DRIFT",
            Outcome::NoHistory => "no-history",
            Outcome::ShortHistory { .. } => "short-history",
            Outcome::MissingMetric => "MISSING",
        }
    }
}

/// Evaluate one gated key of `fresh` against the trailing comparable window.
pub fn evaluate_key(
    history: &History,
    fresh: &PerfRecord,
    key: &str,
    direction: Direction,
    config: &GateConfig,
) -> KeyVerdict {
    let (window, skipped) = history.window_for(fresh, config.window);
    let mut verdict = KeyVerdict {
        bench: fresh.bench.clone(),
        key: key.to_string(),
        direction,
        fresh_median: fresh.metrics.get(key).map(|s| s.median),
        history: window
            .iter()
            .filter_map(|r| r.metrics.get(key).map(|s| (r.commit.clone(), s.median)))
            .collect(),
        window_median: None,
        noise: None,
        skipped_mismatched: skipped,
        outcome: Outcome::Pass,
    };
    let Some(fresh_median) = verdict.fresh_median else {
        verdict.outcome = Outcome::MissingMetric;
        return verdict;
    };
    if verdict.history.is_empty() {
        verdict.outcome = Outcome::NoHistory;
        return verdict;
    }
    if verdict.history.len() < config.min_history {
        verdict.outcome = Outcome::ShortHistory {
            have: verdict.history.len(),
        };
        return verdict;
    }

    let medians: Vec<f64> = verdict.history.iter().map(|(_, m)| *m).collect();
    let center = median(&medians);
    // Round-to-round jitter: the typical within-record MAD across the window.
    let within: Vec<f64> = window
        .iter()
        .filter_map(|r| r.metrics.get(key).map(|s| s.mad))
        .collect();
    let noise = (MAD_SCALE * mad(&medians))
        .max(MAD_SCALE * median(&within))
        .max(config.floor_frac * center.abs());
    verdict.window_median = Some(center);
    verdict.noise = Some(noise);

    // Rule 1: changepoint against the band edge.
    let limit = match direction {
        Direction::HigherIsBetter => center - config.k * noise,
        Direction::LowerIsBetter => center + config.k * noise,
    };
    let crossed = match direction {
        Direction::HigherIsBetter => fresh_median < limit,
        Direction::LowerIsBetter => fresh_median > limit,
    };
    if crossed {
        verdict.outcome = Outcome::Changepoint { limit };
        return verdict;
    }

    // Rule 2: monotone drift over the last `drift_len` medians + fresh.
    if medians.len() >= config.drift_len {
        let mut run: Vec<f64> = medians[medians.len() - config.drift_len..].to_vec();
        run.push(fresh_median);
        let monotone_bad = run.windows(2).all(|w| match direction {
            Direction::HigherIsBetter => w[1] < w[0],
            Direction::LowerIsBetter => w[1] > w[0],
        });
        let total_frac = match direction {
            Direction::HigherIsBetter => {
                (run[0] - fresh_median) / run[0].abs().max(f64::MIN_POSITIVE)
            }
            Direction::LowerIsBetter => {
                (fresh_median - run[0]) / run[0].abs().max(f64::MIN_POSITIVE)
            }
        };
        if monotone_bad && total_frac > config.drift_frac {
            verdict.outcome = Outcome::Drift {
                total_frac,
                steps: run.len() - 1,
            };
            return verdict;
        }
    }

    verdict
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::MetricStats;
    use std::collections::BTreeMap;

    /// A record whose key "m" was measured as `samples`.
    fn record(commit: &str, samples: &[f64]) -> PerfRecord {
        let mut metrics = BTreeMap::new();
        metrics.insert("m".to_string(), MetricStats::from_samples(samples));
        PerfRecord {
            bench: "bench".to_string(),
            commit: commit.to_string(),
            flags: "f".to_string(),
            cores: 1,
            rounds: samples.len() as u32,
            warmups: 1,
            metrics,
        }
    }

    /// A history whose per-commit medians are `medians` (three samples each,
    /// ±1% jitter, so each record carries a small honest MAD).
    fn history_of(medians: &[f64]) -> History {
        History {
            records: medians
                .iter()
                .enumerate()
                .map(|(i, m)| record(&format!("c{i}"), &[*m, m * 1.01, m * 0.99]))
                .collect(),
        }
    }

    fn gate(history: &History, fresh_samples: &[f64]) -> KeyVerdict {
        evaluate_key(
            history,
            &record("fresh", fresh_samples),
            "m",
            Direction::HigherIsBetter,
            &GateConfig::default(),
        )
    }

    #[test]
    fn flat_series_passes() {
        let history = history_of(&[100.0, 101.0, 99.5, 100.5, 100.0, 99.8]);
        let verdict = gate(&history, &[100.2, 99.9, 100.4]);
        assert_eq!(verdict.outcome, Outcome::Pass);
        assert!(!verdict.is_failure());
    }

    #[test]
    fn step_regression_fires_changepoint() {
        let history = history_of(&[100.0, 101.0, 99.5, 100.5, 100.0, 99.8]);
        // A 15% step: well outside k·noise of a ±1% history.
        let verdict = gate(&history, &[85.0, 85.3, 84.8]);
        assert!(
            matches!(verdict.outcome, Outcome::Changepoint { .. }),
            "{verdict:?}"
        );
        assert!(verdict.is_failure());
    }

    #[test]
    fn improvement_never_fires_for_higher_is_better() {
        let history = history_of(&[100.0, 101.0, 99.5, 100.5]);
        let verdict = gate(&history, &[130.0, 131.0, 129.0]);
        assert_eq!(verdict.outcome, Outcome::Pass);
    }

    #[test]
    fn slow_monotone_drift_fires_even_inside_the_band() {
        // Each step is ~3.5% down — inside a wide band (history of such steps
        // has a large commit-to-commit MAD) — but the run loses >10% total.
        let history = history_of(&[100.0, 96.5, 93.0, 89.5, 86.5]);
        let verdict = gate(&history, &[83.5, 83.6, 83.4]);
        assert!(
            matches!(verdict.outcome, Outcome::Drift { .. }),
            "{verdict:?}"
        );
        if let Outcome::Drift { total_frac, steps } = verdict.outcome {
            assert!(total_frac > 0.10, "lost {total_frac}");
            assert_eq!(steps, 4);
        }
    }

    #[test]
    fn single_outlier_in_history_does_not_fire_on_a_normal_fresh_value() {
        // One bad commit in the window (a CI hiccup): median/MAD absorb it,
        // so a normal fresh value must pass — this is exactly where a
        // mean/stddev gate would have recentered and alarmed.
        let history = history_of(&[100.0, 100.5, 55.0, 99.5, 100.2, 100.0]);
        let verdict = gate(&history, &[100.1, 99.8, 100.3]);
        assert_eq!(verdict.outcome, Outcome::Pass, "{verdict:?}");
    }

    #[test]
    fn noisy_but_flat_series_passes() {
        // ±6% commit-to-commit wobble with no trend: the band scales with the
        // observed MAD, so honest noise is not an alarm.
        let history = history_of(&[100.0, 94.0, 106.0, 97.0, 104.0, 95.0]);
        let verdict = gate(&history, &[93.5, 94.0, 93.0]);
        assert_eq!(verdict.outcome, Outcome::Pass, "{verdict:?}");
    }

    #[test]
    fn short_history_is_a_pass_with_a_note() {
        let history = history_of(&[100.0, 100.5]);
        let verdict = gate(&history, &[50.0]);
        assert_eq!(verdict.outcome, Outcome::ShortHistory { have: 2 });
        assert!(!verdict.is_failure(), "bootstrap phase never alarms");
        let verdict = gate(&History::default(), &[50.0]);
        assert_eq!(verdict.outcome, Outcome::NoHistory);
    }

    #[test]
    fn missing_metric_is_format_drift_and_fails() {
        let history = history_of(&[100.0, 100.0, 100.0]);
        let fresh = PerfRecord {
            metrics: BTreeMap::new(),
            ..record("fresh", &[1.0])
        };
        let verdict = evaluate_key(
            &history,
            &fresh,
            "m",
            Direction::HigherIsBetter,
            &GateConfig::default(),
        );
        assert_eq!(verdict.outcome, Outcome::MissingMetric);
        assert!(verdict.is_failure());
    }

    #[test]
    fn config_mismatched_records_are_skipped_not_compared() {
        // History: three comparable records + five 8-core records with awful
        // numbers. The 8-core records must be warned about, never gated on.
        let mut history = history_of(&[100.0, 100.5, 99.5]);
        for i in 0..5 {
            let mut r = record(&format!("x{i}"), &[10.0]);
            r.cores = 8;
            history.records.push(r);
        }
        let verdict = gate(&history, &[100.0]);
        assert_eq!(verdict.outcome, Outcome::Pass, "{verdict:?}");
        assert_eq!(verdict.skipped_mismatched, 5);
        assert_eq!(verdict.history.len(), 3);
    }

    #[test]
    fn lower_is_better_fails_on_rises() {
        let history = history_of(&[100.0, 101.0, 99.0, 100.0]);
        let up = evaluate_key(
            &history,
            &record("fresh", &[125.0]),
            "m",
            Direction::LowerIsBetter,
            &GateConfig::default(),
        );
        assert!(matches!(up.outcome, Outcome::Changepoint { .. }));
        let down = evaluate_key(
            &history,
            &record("fresh", &[80.0]),
            "m",
            Direction::LowerIsBetter,
            &GateConfig::default(),
        );
        assert_eq!(down.outcome, Outcome::Pass);
    }

    #[test]
    fn injected_15_percent_regression_is_caught_where_legacy_30_percent_gate_sleeps() {
        // The acceptance scenario: a quiet history, then a 15% slowdown. The
        // legacy gate's 30% tolerance would wave it through; the changepoint
        // band (k=4, 2% floor ⇒ ±8%) must not.
        let history = history_of(&[100.0, 100.4, 99.7, 100.1, 99.9]);
        let verdict = gate(&history, &[85.0, 84.9, 85.2]);
        assert!(verdict.is_failure(), "{verdict:?}");
        // And five consecutive no-change rounds must raise zero alarms.
        let mut rolling = history;
        for round in 0..5 {
            let fresh = record(&format!("r{round}"), &[100.2, 99.8, 100.0]);
            let verdict = evaluate_key(
                &rolling,
                &fresh,
                "m",
                Direction::HigherIsBetter,
                &GateConfig::default(),
            );
            assert_eq!(verdict.outcome, Outcome::Pass, "round {round}: {verdict:?}");
            rolling.records.push(fresh);
        }
    }
}
