//! Property tests for the history record format: encode → decode → re-encode
//! must be **byte-identical** over randomized records, so the append-only
//! `perf/history.jsonl` is stable under read-modify-append cycles and a
//! record can always be reconstructed exactly from its line.

use cv_perf::{History, MetricStats, PerfRecord};
use proptest::prelude::*;
use proptest::strategy::BoxedStrategy;
use std::collections::BTreeMap;

/// Finite, round-trippable f64s with diverse shapes: integers, dyadic
/// fractions, huge and tiny magnitudes.
fn sample_strategy() -> BoxedStrategy<f64> {
    (any::<i64>(), 0u32..60)
        .prop_map(|(mantissa, shift)| (mantissa >> 8) as f64 / (1u64 << shift) as f64)
        .boxed()
}

/// Identifier-ish strings plus a few hostile ones (quotes, backslashes,
/// unicode) — the escape path is part of the format.
fn name_strategy() -> BoxedStrategy<String> {
    prop_oneof![
        (0usize..5).prop_map(|i| {
            [
                "fleet_scale",
                "learning_overhead",
                "snapshot",
                "pages_per_second",
                "m",
            ][i]
                .to_string()
        }),
        (any::<u32>()).prop_map(|n| format!("key_{n}")),
        (0usize..3).prop_map(|i| ["quo\"te", "back\\slash", "tab\there — µ"][i].to_string()),
    ]
    .boxed()
}

fn stats_strategy() -> BoxedStrategy<MetricStats> {
    prop::collection::vec(sample_strategy(), 1..8)
        .prop_map(|samples| MetricStats::from_samples(&samples))
        .boxed()
}

fn record_strategy() -> BoxedStrategy<PerfRecord> {
    (
        name_strategy(),
        any::<u32>(),
        (1u32..64, 0u32..8, 1u32..16),
        prop::collection::vec((name_strategy(), stats_strategy()), 0..6),
    )
        .prop_map(|(bench, commit, (cores, warmups, rounds), metric_list)| {
            let mut metrics = BTreeMap::new();
            for (key, stats) in metric_list {
                metrics.insert(key, stats);
            }
            PerfRecord {
                bench,
                commit: format!("{commit:08x}"),
                flags: "epochs=2,nodes=64,workers=2".to_string(),
                cores,
                rounds,
                warmups,
                metrics,
            }
        })
        .boxed()
}

proptest! {
    #[test]
    fn encode_decode_reencode_is_byte_identical(record in record_strategy()) {
        let line = record.to_json_line();
        prop_assert!(!line.contains('\n'), "one record = one line");
        let decoded = PerfRecord::parse(&line).expect("own encoding must parse");
        prop_assert_eq!(&decoded, &record);
        prop_assert_eq!(decoded.to_json_line(), line);
    }

    #[test]
    fn history_files_round_trip_record_for_record(
        records in prop::collection::vec(record_strategy(), 1..5),
        tag in any::<u64>(),
    ) {
        let dir = std::env::temp_dir().join("cv_perf_roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("h{tag:016x}.jsonl"));
        let _ = std::fs::remove_file(&path);
        History::append(&path, &records).expect("append");
        let loaded = History::load(&path).expect("load");
        prop_assert_eq!(&loaded.records, &records);
        // Re-appending the loaded records reproduces the exact byte suffix.
        let first = std::fs::read_to_string(&path).unwrap();
        History::append(&path, &loaded.records).expect("re-append");
        let doubled = std::fs::read_to_string(&path).unwrap();
        prop_assert_eq!(doubled, format!("{first}{first}"));
        let _ = std::fs::remove_file(&path);
    }
}
