//! # cv-isa — simulated x86-like instruction set
//!
//! ClearView operates on *stripped Windows x86 binaries*: it learns invariants over the
//! values of registers and memory locations at specific instructions, discovers
//! procedures and basic blocks dynamically, and applies patches keyed by instruction
//! address. None of that requires the full x86 encoding — it requires a binary-level
//! program representation with:
//!
//! * registers and a flat addressable memory,
//! * `base + index*scale + displacement` addressing,
//! * direct and *indirect* control transfers (indirect calls are the attack surface for
//!   the code-injection exploits in the Red Team exercise),
//! * a call stack manipulated through `push`/`pop`/`call`/`ret`,
//! * a linear code segment with instruction addresses and *no symbol information*.
//!
//! This crate provides exactly that substrate:
//!
//! * [`Reg`], [`Operand`], [`MemRef`] — the operand model.
//! * [`Inst`] — the instruction set, including the allocator and copy intrinsics that
//!   stand in for the C runtime library calls (`malloc`/`free`/`memcpy`) which the real
//!   system intercepts at the binary level.
//! * [`encode`] / [`decode`] — a word-oriented binary encoding so that programs exist as
//!   opaque numeric images (a "stripped binary") rather than as structured Rust values.
//! * [`BinaryImage`] and [`MemoryLayout`] — the program image and the address-space
//!   layout shared by the runtime, the inference engine, and the guest applications.
//! * [`ProgramBuilder`] — a small assembler with labels and procedures used by
//!   `cv-apps` to construct the synthetic vulnerable browser.
//!
//! Memory is word-granular: every address names a 32-bit cell. This is a documented
//! simplification relative to byte-addressed x86; it preserves everything ClearView
//! depends on (addresses, bounds, canaries, pointer/function-pointer values) while
//! keeping the interpreter and the learning traces simple.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asm;
mod encode;
mod error;
mod image;
mod inst;
mod operand;
mod reg;

pub use asm::{Label, ProgramBuilder};
pub use encode::{decode, decode_all, encode, encoded_len, InstWithAddr};
pub use error::IsaError;
pub use image::{BinaryImage, MemoryLayout, Segment};
pub use inst::{Cond, InlineList, Inst, MemRefs, Port, ReadOperands};
pub use operand::{MemRef, Operand};
pub use reg::{Flags, Reg};

/// A guest address. Addresses are indices of 32-bit memory cells.
pub type Addr = u32;

/// A guest machine word.
pub type Word = u32;

/// Interpret a guest word as a signed 32-bit value.
#[inline]
pub fn as_signed(w: Word) -> i32 {
    w as i32
}

/// Interpret a signed value as a guest word.
#[inline]
pub fn as_word(v: i32) -> Word {
    v as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_round_trip() {
        for v in [-5i32, 0, 1, i32::MAX, i32::MIN, -100_000] {
            assert_eq!(as_signed(as_word(v)), v);
        }
    }

    #[test]
    fn word_round_trip() {
        for w in [0u32, 1, u32::MAX, 0x8000_0000, 12345] {
            assert_eq!(as_word(as_signed(w)), w);
        }
    }
}
