//! The dirty-epoch plane: which check addresses changed, per shard, per epoch.
//!
//! Cutting a delta snapshot by diffing two fully materialized snapshots costs
//! O(database) no matter how little changed — the scaling wall for large community
//! databases. [`DirtyEpochs`] removes it: the coordinator stamps every mutation of
//! its invariant store (and every procedure discovery, and every shard a patch plan
//! touched) into a per-epoch bucket **as the mutation lands**, so
//! [`DirtyEpochs::dirty_since`] can answer "what may differ from the epoch-`B`
//! checkpoint?" in time proportional to what actually changed since `B` — never by
//! scanning the database.
//!
//! Shard keying uses the shared [`ShardRouter`], the same routing the sharded
//! store, the manager plane, and the snapshot/delta containers use.
//!
//! ## Soundness contract
//!
//! `dirty_since(B)` must return a **superset** of the addresses whose entries
//! differ between the epoch-`B` checkpoint and the current state (the delta cutter
//! re-compares each candidate against the base, so over-approximation only costs
//! cut time — under-approximation would silently drop changes). Two rules uphold
//! it:
//!
//! * Every mutation of the tracked state is stamped; a state swap whose mutation
//!   history is unknown (restoring a snapshot, replacing the model wholesale)
//!   [`reset`](DirtyEpochs::reset)s the tracker with a new *floor* — the earliest
//!   base epoch it can answer for. Below the floor the caller must fall back to a
//!   materialized diff.
//! * `dirty_since(B)` includes the bucket of epoch `B` itself, not just later
//!   buckets: a checkpoint labelled `B` may have been cut *before* later mutations
//!   stamped in the still-open epoch `B`, and the cheap re-compare makes the
//!   over-approximation free.

use crate::route::ShardRouter;
use cv_isa::Addr;
use std::collections::{BTreeMap, BTreeSet};

/// Everything that may differ between a base checkpoint and the current state:
/// the answer [`DirtyEpochs::dirty_since`] hands the delta cutter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DirtySet {
    /// Per shard, the check addresses stamped dirty, ascending and deduplicated.
    pub per_shard: Vec<Vec<Addr>>,
    /// Procedure entries discovered since the base, ascending and deduplicated.
    pub procs: Vec<Addr>,
    /// Shards stamped by patch-plan application (ascending, deduplicated) — the
    /// configuration-change footprint since the base, surfaced as the fleet's
    /// `plan_dirty_shards_last` metric. It never affects the delta payload (the
    /// plan rides wholesale in every delta), which is also why
    /// [`DirtySet::is_clean`] deliberately ignores it.
    pub plan_shards: Vec<u32>,
}

impl DirtySet {
    /// The shard count the set is keyed by.
    pub fn shard_count(&self) -> usize {
        self.per_shard.len()
    }

    /// Total dirty check addresses across all shards.
    pub fn dirty_addr_count(&self) -> usize {
        self.per_shard.iter().map(|s| s.len()).sum()
    }

    /// Number of shards with at least one dirty check address.
    pub fn dirty_shard_count(&self) -> usize {
        self.per_shard.iter().filter(|s| !s.is_empty()).count()
    }

    /// True if no *state content* (entries, procedures) was stamped since the
    /// base — plan stamps are excluded, since the plan is carried wholesale in
    /// every delta regardless.
    pub fn is_clean(&self) -> bool {
        self.per_shard.iter().all(|s| s.is_empty()) && self.procs.is_empty()
    }
}

/// Per-shard dirty-address buckets keyed by epoch, with a floor below which the
/// mutation history is unknown.
#[derive(Debug, Clone)]
pub struct DirtyEpochs {
    router: ShardRouter,
    /// The earliest base epoch `dirty_since` can answer for: the tracker has seen
    /// every mutation since the state that checkpoints at `floor` captured.
    floor: u64,
    /// The epoch mutations are currently stamped into.
    epoch: u64,
    /// Per shard: epoch → check addresses stamped dirty in that epoch.
    shards: Vec<BTreeMap<u64, BTreeSet<Addr>>>,
    /// Epoch → procedure entries discovered in that epoch.
    procs: BTreeMap<u64, BTreeSet<Addr>>,
    /// Epoch → shards stamped by patch-plan application in that epoch.
    plan_shards: BTreeMap<u64, BTreeSet<u32>>,
}

impl DirtyEpochs {
    /// A tracker over `shard_count` shards whose history is complete from
    /// `floor` on (a brand-new empty store uses floor 0: it has seen everything).
    pub fn new(shard_count: usize, floor: u64) -> Self {
        DirtyEpochs {
            router: ShardRouter::new(shard_count),
            floor,
            epoch: floor,
            shards: vec![BTreeMap::new(); shard_count.max(1)],
            procs: BTreeMap::new(),
            plan_shards: BTreeMap::new(),
        }
    }

    /// Number of shards addresses are routed across.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The earliest base epoch [`DirtyEpochs::dirty_since`] can answer for.
    pub fn floor(&self) -> u64 {
        self.floor
    }

    /// The epoch mutations are currently stamped into.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Advance the stamping epoch (it never moves backwards).
    pub fn begin_epoch(&mut self, epoch: u64) {
        self.epoch = self.epoch.max(epoch);
    }

    /// Forget all history and restart with complete knowledge from `floor` on —
    /// the state was just swapped wholesale (snapshot restore, model replacement)
    /// and nothing is known about how it differs from older checkpoints.
    pub fn reset(&mut self, floor: u64) {
        self.floor = floor;
        self.epoch = floor;
        for shard in &mut self.shards {
            shard.clear();
        }
        self.procs.clear();
        self.plan_shards.clear();
    }

    /// Stamp `addr` dirty in the current epoch (routing it to its shard).
    pub fn mark(&mut self, addr: Addr) {
        let shard = self.router.shard_of(addr);
        self.mark_in_shard(shard, addr);
    }

    /// Stamp `addr` dirty in the current epoch when the caller already routed it
    /// (the sharded store's merge paths know the owning shard).
    pub fn mark_in_shard(&mut self, shard: usize, addr: Addr) {
        debug_assert_eq!(self.router.shard_of(addr), shard, "addr routed off-shard");
        self.shards[shard]
            .entry(self.epoch)
            .or_default()
            .insert(addr);
    }

    /// Stamp a procedure entry discovered in the current epoch.
    pub fn mark_proc(&mut self, entry: Addr) {
        self.procs.entry(self.epoch).or_default().insert(entry);
    }

    /// Stamp a shard touched by patch-plan application in the current epoch.
    pub fn mark_plan_shard(&mut self, shard: usize) {
        self.plan_shards
            .entry(self.epoch)
            .or_default()
            .insert(shard as u32);
    }

    /// True if the tracker can answer `dirty_since(base_epoch)`.
    pub fn covers(&self, base_epoch: u64) -> bool {
        base_epoch >= self.floor
    }

    /// Everything stamped dirty in epochs `>= base_epoch` — a superset of what
    /// differs from the epoch-`base_epoch` checkpoint — or `None` when the base
    /// predates the tracker's floor and only a materialized diff can answer.
    ///
    /// Cost is proportional to the number of stamps since the base, not to the
    /// database size: buckets older than the base are never visited.
    pub fn dirty_since(&self, base_epoch: u64) -> Option<DirtySet> {
        if !self.covers(base_epoch) {
            return None;
        }
        let per_shard = self
            .shards
            .iter()
            .map(|buckets| {
                let mut addrs: BTreeSet<Addr> = BTreeSet::new();
                for (_, bucket) in buckets.range(base_epoch..) {
                    addrs.extend(bucket.iter().copied());
                }
                addrs.into_iter().collect()
            })
            .collect();
        let mut procs: BTreeSet<Addr> = BTreeSet::new();
        for (_, bucket) in self.procs.range(base_epoch..) {
            procs.extend(bucket.iter().copied());
        }
        let mut plan_shards: BTreeSet<u32> = BTreeSet::new();
        for (_, bucket) in self.plan_shards.range(base_epoch..) {
            plan_shards.extend(bucket.iter().copied());
        }
        Some(DirtySet {
            per_shard,
            procs: procs.into_iter().collect(),
            plan_shards: plan_shards.into_iter().collect(),
        })
    }

    /// Drop buckets older than `epoch` and raise the floor accordingly — bounds
    /// the tracker's memory on a long-lived coordinator. Bases older than the new
    /// floor fall back to materialized diffs (the tracker reports not covering
    /// them); nothing is ever silently misanswered.
    pub fn retain_since(&mut self, epoch: u64) {
        if epoch <= self.floor {
            return;
        }
        for shard in &mut self.shards {
            *shard = shard.split_off(&epoch);
        }
        self.procs = self.procs.split_off(&epoch);
        self.plan_shards = self.plan_shards.split_off(&epoch);
        self.floor = epoch;
        self.epoch = self.epoch.max(epoch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamps_accumulate_per_epoch_and_shard() {
        let mut dirty = DirtyEpochs::new(4, 0);
        dirty.begin_epoch(1);
        dirty.mark(0x1000);
        dirty.mark(0x1004);
        dirty.begin_epoch(2);
        dirty.mark(0x1000); // re-dirtied: appears once in any union
        dirty.mark_proc(0x4_0000);
        dirty.mark_plan_shard(3);

        let all = dirty.dirty_since(0).unwrap();
        assert_eq!(all.dirty_addr_count(), 2);
        assert_eq!(all.procs, vec![0x4_0000]);
        assert_eq!(all.plan_shards, vec![3]);
        for (shard, addrs) in all.per_shard.iter().enumerate() {
            for addr in addrs {
                assert_eq!(ShardRouter::route(*addr, 4), shard);
            }
        }

        // A base at epoch 2 still sees the epoch-2 stamps (the epoch is open when
        // a checkpoint is cut), but not the epoch-1-only ones.
        let since2 = dirty.dirty_since(2).unwrap();
        assert_eq!(since2.dirty_addr_count(), 1);
        let since3 = dirty.dirty_since(3).unwrap();
        assert!(since3.is_clean());
        assert_eq!(since3.shard_count(), 4);
    }

    #[test]
    fn floor_gates_answers_and_reset_forgets() {
        let mut dirty = DirtyEpochs::new(2, 5);
        assert!(!dirty.covers(4));
        assert!(dirty.dirty_since(4).is_none());
        dirty.begin_epoch(6);
        dirty.mark(0x2000);
        assert_eq!(dirty.dirty_since(5).unwrap().dirty_addr_count(), 1);

        dirty.reset(9);
        assert_eq!(dirty.floor(), 9);
        assert!(dirty.dirty_since(8).is_none());
        assert!(dirty.dirty_since(9).unwrap().is_clean());
    }

    #[test]
    fn epochs_never_move_backwards() {
        let mut dirty = DirtyEpochs::new(2, 0);
        dirty.begin_epoch(7);
        dirty.begin_epoch(3);
        assert_eq!(dirty.epoch(), 7);
    }

    #[test]
    fn retain_since_drops_old_buckets_and_raises_the_floor() {
        let mut dirty = DirtyEpochs::new(2, 0);
        for epoch in 1..=6u64 {
            dirty.begin_epoch(epoch);
            dirty.mark(0x1000 + epoch as Addr * 4);
        }
        dirty.retain_since(4);
        assert_eq!(dirty.floor(), 4);
        assert!(dirty.dirty_since(3).is_none());
        assert_eq!(dirty.dirty_since(4).unwrap().dirty_addr_count(), 3);
        // Retaining backwards is a no-op.
        dirty.retain_since(2);
        assert_eq!(dirty.floor(), 4);
    }
}
