//! Dense interning tables for the learning hot path.
//!
//! The front end's per-event work used to be dominated by hashing 16-byte
//! [`Variable`] structs into `HashMap`s — once per operand for the single-variable
//! statistics, and once per (prior, current) combination for the pairwise statistics.
//! This module replaces those maps with *interned* representations: every `Variable`
//! is mapped to a dense `u32` [`VarId`] the first time it is seen, statistics live in
//! `Vec`-indexed struct-of-arrays tables addressed by id (pairs by a packed `u64` of
//! two ids), and a per-instruction-address [`ScheduleCache`] resolves each
//! instruction's read slots and prior-in-block variables to ids exactly once. The
//! commit path then touches hash tables only once per *event* (the `Addr → schedule`
//! lookup), never per operand or per pair.
//!
//! Full [`Variable`]s are resolved back out of the tables only at `infer()` time,
//! where a sorted index vector reproduces the canonical (sorted-by-variable) order
//! the reference implementation emits — the byte-identical-log guarantee of the
//! fleet's manager plane depends on it.

use crate::cfg::ProcedureDatabase;
use crate::invariant::ONE_OF_LIMIT;
use crate::variable::Variable;
use cv_isa::{Addr, Inst, Operand, Word};
use std::collections::HashMap;

/// Dense identifier of an interned [`Variable`]. Ids are assigned in first-sight
/// order and are *not* ordered like the variables they name; canonical orderings are
/// produced by sorting resolved variables at inference time.
pub(crate) type VarId = u32;

/// Sentinel id for schedule slots that carry no variable (immediate operands).
pub(crate) const NO_VAR: VarId = u32::MAX;

/// Maximum read slots per instruction, tied to the instruction set's own capacity so
/// a widened `ReadOperands` cannot silently outgrow the schedule slot arrays.
pub(crate) const MAX_READS: usize = cv_isa::ReadOperands::CAPACITY;

const OVERFLOWED: u8 = 1 << 0;
const NONPOINTER: u8 = 1 << 1;

/// Interned variables plus their sample statistics, stored as struct-of-arrays.
#[derive(Debug, Default)]
pub(crate) struct VarTable {
    ids: HashMap<Variable, VarId>,
    vars: Vec<Variable>,
    count: Vec<u64>,
    min_signed: Vec<i32>,
    flags: Vec<u8>,
    /// Observed value sets, sorted, cleared once they overflow [`ONE_OF_LIMIT`].
    values: Vec<Vec<Word>>,
    /// Variables with at least one recorded sample (`count > 0`).
    observed: u64,
}

impl VarTable {
    /// The id of `var`, interning it on first sight.
    pub fn intern(&mut self, var: Variable) -> VarId {
        if let Some(&id) = self.ids.get(&var) {
            return id;
        }
        let id = self.vars.len() as VarId;
        self.ids.insert(var, id);
        self.vars.push(var);
        self.count.push(0);
        self.min_signed.push(i32::MAX);
        self.flags.push(0);
        self.values.push(Vec::new());
        id
    }

    /// Number of interned variables (observed or not).
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Number of variables with at least one recorded sample.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// The variable behind `id`.
    pub fn var(&self, id: VarId) -> Variable {
        self.vars[id as usize]
    }

    /// Samples recorded for `id`.
    pub fn count(&self, id: VarId) -> u64 {
        self.count[id as usize]
    }

    /// The smallest signed value recorded for `id`.
    pub fn min_signed(&self, id: VarId) -> i32 {
        self.min_signed[id as usize]
    }

    /// True if the one-of value set overflowed.
    pub fn overflowed(&self, id: VarId) -> bool {
        self.flags[id as usize] & OVERFLOWED != 0
    }

    /// The recorded one-of values (sorted; empty after overflow).
    pub fn values(&self, id: VarId) -> &[Word] {
        &self.values[id as usize]
    }

    /// Pointer classification (Section 2.2.4): no recorded value was negative or in
    /// `1..=100_000`.
    pub fn is_pointer(&self, id: VarId) -> bool {
        self.flags[id as usize] & NONPOINTER == 0
    }

    /// Record one sample for `id` — the dense equivalent of the reference
    /// implementation's `VarStats::update`.
    pub fn record(&mut self, id: VarId, value: Word) {
        let i = id as usize;
        if self.count[i] == 0 {
            self.observed += 1;
        }
        self.count[i] += 1;
        if self.flags[i] & OVERFLOWED == 0 {
            let set = &mut self.values[i];
            if let Err(pos) = set.binary_search(&value) {
                set.insert(pos, value);
                if set.len() > ONE_OF_LIMIT {
                    self.flags[i] |= OVERFLOWED;
                    set.clear();
                }
            }
        }
        let signed = value as i32;
        if signed < self.min_signed[i] {
            self.min_signed[i] = signed;
        }
        // Pointer classification heuristic from Section 2.2.4: a value that is
        // negative or between 1 and 100,000 is evidence the variable is not a pointer.
        if signed < 0 || (1..=100_000).contains(&signed) {
            self.flags[i] |= NONPOINTER;
        }
    }
}

const A_LE_B: u8 = 1 << 0;
const B_LE_A: u8 = 1 << 1;
const ALWAYS_EQ: u8 = 1 << 2;

/// Pairwise sample statistics keyed by a packed `u64` of two [`VarId`]s, where the
/// `a` side is the variable that is smaller in [`Variable`] order. The commit path
/// guarantees that ordering structurally: prior-in-block variables precede the
/// current instruction's (lower address), and read slots pair in ascending slot
/// order — so no per-sample comparison of full variables is needed.
#[derive(Debug, Default)]
pub(crate) struct PairTable {
    index: HashMap<u64, u32>,
    keys: Vec<u64>,
    count: Vec<u64>,
    flags: Vec<u8>,
}

impl PairTable {
    /// Number of distinct pairs recorded.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// The (a, b) ids of pair `idx`.
    pub fn ids(&self, idx: usize) -> (VarId, VarId) {
        let key = self.keys[idx];
        ((key >> 32) as VarId, key as VarId)
    }

    /// Samples recorded for pair `idx`.
    pub fn count_at(&self, idx: usize) -> u64 {
        self.count[idx]
    }

    /// True if `a <= b` held on every sample.
    pub fn a_le_b(&self, idx: usize) -> bool {
        self.flags[idx] & A_LE_B != 0
    }

    /// True if `b <= a` held on every sample.
    pub fn b_le_a(&self, idx: usize) -> bool {
        self.flags[idx] & B_LE_A != 0
    }

    /// True if `a == b` held on every sample.
    pub fn always_eq(&self, idx: usize) -> bool {
        self.flags[idx] & ALWAYS_EQ != 0
    }

    /// Record one sample for the pair `(a, b)` — `a` must be the variable that is
    /// smaller in [`Variable`] order (see the type docs).
    pub fn record(&mut self, a: VarId, b: VarId, va: Word, vb: Word) {
        let key = (u64::from(a) << 32) | u64::from(b);
        let idx = *self.index.entry(key).or_insert_with(|| {
            self.keys.push(key);
            self.count.push(0);
            self.flags.push(A_LE_B | B_LE_A | ALWAYS_EQ);
            (self.keys.len() - 1) as u32
        }) as usize;
        self.count[idx] += 1;
        let (sa, sb) = (va as i32, vb as i32);
        if sa > sb {
            self.flags[idx] &= !A_LE_B;
        }
        if sb > sa {
            self.flags[idx] &= !B_LE_A;
        }
        if sa != sb {
            self.flags[idx] &= !ALWAYS_EQ;
        }
    }
}

/// Stack-pointer offset sets keyed by a packed `u64` of `(proc_entry, at)`. Packed
/// keys sort exactly like the `(Addr, Addr)` tuples they encode, so inference sorts
/// the key vector directly.
#[derive(Debug, Default)]
pub(crate) struct SpOffsetTable {
    index: HashMap<u64, u32>,
    keys: Vec<u64>,
    /// Distinct offsets per key, sorted.
    offsets: Vec<Vec<i32>>,
}

impl SpOffsetTable {
    /// The `(proc_entry, at)` pair of entry `idx`.
    pub fn key(&self, idx: usize) -> (Addr, Addr) {
        let key = self.keys[idx];
        ((key >> 32) as Addr, key as Addr)
    }

    /// The distinct offsets recorded for entry `idx` (sorted).
    pub fn offsets_at(&self, idx: usize) -> &[i32] {
        &self.offsets[idx]
    }

    /// Record one observed offset.
    pub fn record(&mut self, proc_entry: Addr, at: Addr, offset: i32) {
        let key = (u64::from(proc_entry) << 32) | u64::from(at);
        let idx = *self.index.entry(key).or_insert_with(|| {
            self.keys.push(key);
            self.offsets.push(Vec::new());
            (self.keys.len() - 1) as u32
        }) as usize;
        let set = &mut self.offsets[idx];
        if let Err(pos) = set.binary_search(&offset) {
            set.insert(pos, offset);
        }
    }

    /// Index order that visits keys in ascending `(proc_entry, at)` order.
    pub fn sorted_indices(&self) -> Vec<u32> {
        let mut order: Vec<u32> = (0..self.keys.len() as u32).collect();
        order.sort_unstable_by_key(|&i| self.keys[i as usize]);
        order
    }
}

/// The precomputed learning work for one instruction address.
#[derive(Debug)]
pub(crate) struct Schedule {
    /// The instruction the schedule was built for. Instructions inside the loaded
    /// image are immutable, but the runtime can trace injected code decoded straight
    /// from mutable memory — the cache revalidates against this field and rebuilds
    /// on mismatch so such addresses never serve a stale schedule.
    pub inst: Inst,
    /// Interned id per read slot (`NO_VAR` for immediate operands).
    pub slots: [VarId; MAX_READS],
    /// True if a discovered procedure places the address in a basic block — the
    /// precondition for any pairwise samples.
    pub in_block: bool,
    /// Ids of every non-immediate read of every prior-in-block instruction, in block
    /// order: the resolved pair schedule.
    pub priors: Vec<VarId>,
}

/// Per-address cache of [`Schedule`]s, invalidated wholesale whenever procedure
/// discovery advances (an address may move from "not in any block" to "in a block").
#[derive(Debug, Default)]
pub(crate) struct ScheduleCache {
    by_addr: HashMap<Addr, u32>,
    entries: Vec<Schedule>,
    version: u64,
}

impl ScheduleCache {
    /// Drop every schedule if `version` (the procedure database's discovery counter)
    /// has advanced since the cache was built.
    pub fn sync(&mut self, version: u64) {
        if self.version != version {
            self.by_addr.clear();
            self.entries.clear();
            self.version = version;
        }
    }

    /// The schedule for `addr`, building (or rebuilding, when the traced instruction
    /// changed) it on demand. This is the single hash lookup the commit path performs
    /// per event.
    pub fn get_or_build(
        &mut self,
        addr: Addr,
        inst: Inst,
        procedures: &ProcedureDatabase,
        vars: &mut VarTable,
    ) -> &Schedule {
        let idx = match self.by_addr.get(&addr) {
            Some(&i) if self.entries[i as usize].inst == inst => i as usize,
            Some(&i) => {
                self.entries[i as usize] = build_schedule(addr, inst, procedures, vars);
                i as usize
            }
            None => {
                self.entries
                    .push(build_schedule(addr, inst, procedures, vars));
                let i = (self.entries.len() - 1) as u32;
                self.by_addr.insert(addr, i);
                i as usize
            }
        };
        &self.entries[idx]
    }
}

fn build_schedule(
    addr: Addr,
    inst: Inst,
    procedures: &ProcedureDatabase,
    vars: &mut VarTable,
) -> Schedule {
    let mut slots = [NO_VAR; MAX_READS];
    for (slot, op) in inst.operands_read().into_iter().enumerate() {
        if matches!(op, Operand::Imm(_)) {
            continue;
        }
        slots[slot] = vars.intern(Variable::read(addr, slot as u8, op));
    }
    let mut priors = Vec::new();
    let mut in_block = false;
    if let Some(prefix) = procedures.block_prefix(addr) {
        in_block = true;
        for prior in prefix {
            for (slot, op) in prior.inst.operands_read().into_iter().enumerate() {
                if matches!(op, Operand::Imm(_)) {
                    continue;
                }
                priors.push(vars.intern(Variable::read(prior.addr, slot as u8, op)));
            }
        }
    }
    Schedule {
        inst,
        slots,
        in_block,
        priors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_isa::Reg;

    fn var(addr: Addr, slot: u8) -> Variable {
        Variable::read(addr, slot, Operand::Reg(Reg::Eax))
    }

    #[test]
    fn interning_is_stable_and_dense() {
        let mut t = VarTable::default();
        let a = t.intern(var(1, 0));
        let b = t.intern(var(2, 0));
        assert_eq!(t.intern(var(1, 0)), a);
        assert_eq!((a, b), (0, 1));
        assert_eq!(t.len(), 2);
        assert_eq!(t.var(a), var(1, 0));
        assert_eq!(t.observed(), 0, "interning alone records no sample");
    }

    #[test]
    fn var_stats_match_reference_semantics() {
        let mut t = VarTable::default();
        let id = t.intern(var(1, 0));
        for v in [5u32, 3, 5, 7] {
            t.record(id, v);
        }
        assert_eq!(t.count(id), 4);
        assert_eq!(t.min_signed(id), 3);
        assert_eq!(t.values(id), &[3, 5, 7]);
        assert!(!t.overflowed(id));
        assert!(
            !t.is_pointer(id),
            "small positive values are non-pointer evidence"
        );
        assert_eq!(t.observed(), 1);
        // Overflow past ONE_OF_LIMIT clears the set.
        for v in 100..110 {
            t.record(id, v);
        }
        assert!(t.overflowed(id));
        assert!(t.values(id).is_empty());
    }

    #[test]
    fn pointer_classification() {
        let mut t = VarTable::default();
        let id = t.intern(var(1, 0));
        t.record(id, 0x40_0000);
        t.record(id, 0);
        assert!(t.is_pointer(id));
        t.record(id, 55);
        assert!(!t.is_pointer(id));
    }

    #[test]
    fn pair_flags_track_order_and_equality() {
        let mut t = PairTable::default();
        t.record(0, 1, 3, 3);
        assert!(t.a_le_b(0) && t.b_le_a(0) && t.always_eq(0));
        t.record(0, 1, 2, 5);
        assert!(t.a_le_b(0) && !t.b_le_a(0) && !t.always_eq(0));
        t.record(0, 1, 9, 5);
        assert!(!t.a_le_b(0));
        assert_eq!(t.count_at(0), 3);
        assert_eq!(t.ids(0), (0, 1));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn sp_offsets_sort_like_address_pairs() {
        let mut t = SpOffsetTable::default();
        t.record(2, 1, 0);
        t.record(1, 9, 4);
        t.record(1, 2, -2);
        t.record(1, 2, -2);
        let order = t.sorted_indices();
        let keys: Vec<(Addr, Addr)> = order.iter().map(|&i| t.key(i as usize)).collect();
        assert_eq!(keys, vec![(1, 2), (1, 9), (2, 1)]);
        assert_eq!(t.offsets_at(order[0] as usize), &[-2]);
    }
}
