//! The binary image format and the guest address-space layout.

use crate::{Addr, Word};
use serde::{Deserialize, Serialize};

/// The segments of the guest address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Segment {
    /// Executable code loaded from the binary image.
    Code,
    /// Static data loaded from the binary image.
    Data,
    /// The dynamically managed heap.
    Heap,
    /// The call stack (grows towards lower addresses).
    Stack,
    /// Unmapped space between segments.
    Unmapped,
}

/// The address-space layout shared by the runtime, the learning component, and the
/// guest applications.
///
/// A single fixed layout (rather than per-program layouts) mirrors the fixed virtual
/// address space of a Win32 process image and keeps failure locations, invariants, and
/// patches directly comparable across runs and across community members.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryLayout {
    /// First address of the code segment.
    pub code_base: Addr,
    /// Number of words in the code segment.
    pub code_size: u32,
    /// First address of the static data segment.
    pub data_base: Addr,
    /// Number of words in the data segment.
    pub data_size: u32,
    /// First address of the heap segment.
    pub heap_base: Addr,
    /// Number of words in the heap segment.
    pub heap_size: u32,
    /// Lowest address of the stack segment.
    pub stack_base: Addr,
    /// Number of words in the stack segment. The initial stack pointer is
    /// `stack_base + stack_size` and the stack grows downwards.
    pub stack_size: u32,
}

impl Default for MemoryLayout {
    fn default() -> Self {
        // All segment bases sit above 100,000 so that genuine pointers (code, data,
        // heap, and stack addresses) are classified as pointers by the Daikon heuristic
        // of Section 2.2.4 ("a negative value or a value between 1 and 100,000 is
        // evidence that a variable is not a pointer"), just as on a real Win32 layout.
        MemoryLayout {
            code_base: 0x40000,
            code_size: 0x10000,
            data_base: 0x50000,
            data_size: 0x10000,
            heap_base: 0x60000,
            heap_size: 0x30000,
            stack_base: 0x90000,
            stack_size: 0x10000,
        }
    }
}

impl MemoryLayout {
    /// Total number of addressable words (the end of the stack segment).
    pub fn total_words(&self) -> usize {
        (self.stack_base + self.stack_size) as usize
    }

    /// The initial stack pointer (one past the highest stack address; the first push
    /// decrements before storing).
    pub fn initial_sp(&self) -> Addr {
        self.stack_base + self.stack_size
    }

    /// One past the last valid code address.
    pub fn code_end(&self) -> Addr {
        self.code_base + self.code_size
    }

    /// One past the last valid data address.
    pub fn data_end(&self) -> Addr {
        self.data_base + self.data_size
    }

    /// One past the last valid heap address.
    pub fn heap_end(&self) -> Addr {
        self.heap_base + self.heap_size
    }

    /// One past the last valid stack address.
    pub fn stack_end(&self) -> Addr {
        self.stack_base + self.stack_size
    }

    /// Classify an address into a segment.
    pub fn segment_of(&self, addr: Addr) -> Segment {
        if addr >= self.code_base && addr < self.code_end() {
            Segment::Code
        } else if addr >= self.data_base && addr < self.data_end() {
            Segment::Data
        } else if addr >= self.heap_base && addr < self.heap_end() {
            Segment::Heap
        } else if addr >= self.stack_base && addr < self.stack_end() {
            Segment::Stack
        } else {
            Segment::Unmapped
        }
    }

    /// True if `addr` names a valid (mapped) word.
    pub fn is_mapped(&self, addr: Addr) -> bool {
        self.segment_of(addr) != Segment::Unmapped
    }

    /// True if `addr` lies within the code segment — the legality test used by the
    /// Memory Firewall for control-flow transfer targets.
    pub fn is_code(&self, addr: Addr) -> bool {
        self.segment_of(addr) == Segment::Code
    }
}

/// A loadable, *stripped* program image: raw code words, raw data words, an entry
/// point — and nothing else. No symbols, no relocation records, no debug information.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinaryImage {
    /// The address-space layout the image was assembled against.
    pub layout: MemoryLayout,
    /// Encoded instruction words, loaded at `layout.code_base`.
    pub code: Vec<Word>,
    /// Static data words, loaded at `layout.data_base`.
    pub data: Vec<Word>,
    /// The address of the first instruction to execute.
    pub entry: Addr,
}

impl BinaryImage {
    /// The address one past the last code word.
    pub fn code_end(&self) -> Addr {
        self.layout.code_base + self.code.len() as u32
    }

    /// True if `addr` falls within the loaded code words (not merely the code segment).
    pub fn contains_code_addr(&self, addr: Addr) -> bool {
        addr >= self.layout.code_base && addr < self.code_end()
    }

    /// Fetch the code word at `addr`, if it is within the loaded image.
    pub fn code_word(&self, addr: Addr) -> Option<Word> {
        if self.contains_code_addr(addr) {
            Some(self.code[(addr - self.layout.code_base) as usize])
        } else {
            None
        }
    }

    /// A rough size measure used by reports: code plus data words.
    pub fn loaded_words(&self) -> usize {
        self.code.len() + self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_layout_is_contiguous_and_ordered() {
        let l = MemoryLayout::default();
        assert!(l.code_base < l.data_base);
        assert!(l.data_base < l.heap_base);
        assert!(l.heap_base < l.stack_base);
        assert_eq!(l.code_end(), l.data_base);
        assert_eq!(l.data_end(), l.heap_base);
        assert_eq!(l.heap_end(), l.stack_base);
        assert_eq!(l.total_words(), l.stack_end() as usize);
    }

    #[test]
    fn segment_classification() {
        let l = MemoryLayout::default();
        assert_eq!(l.segment_of(l.code_base), Segment::Code);
        assert_eq!(l.segment_of(l.data_base), Segment::Data);
        assert_eq!(l.segment_of(l.heap_base), Segment::Heap);
        assert_eq!(l.segment_of(l.stack_base), Segment::Stack);
        assert_eq!(l.segment_of(l.stack_end() - 1), Segment::Stack);
        assert_eq!(l.segment_of(0), Segment::Unmapped);
        assert_eq!(l.segment_of(l.stack_end()), Segment::Unmapped);
    }

    #[test]
    fn is_code_only_accepts_code_segment() {
        let l = MemoryLayout::default();
        assert!(l.is_code(l.code_base + 5));
        assert!(!l.is_code(l.heap_base + 5));
        assert!(!l.is_code(l.stack_base + 5));
    }

    #[test]
    fn initial_sp_is_stack_end() {
        let l = MemoryLayout::default();
        assert_eq!(l.initial_sp(), l.stack_end());
    }

    #[test]
    fn binary_image_code_lookup() {
        let layout = MemoryLayout::default();
        let image = BinaryImage {
            layout,
            code: vec![10, 20, 30],
            data: vec![1, 2],
            entry: layout.code_base,
        };
        assert_eq!(image.code_word(layout.code_base), Some(10));
        assert_eq!(image.code_word(layout.code_base + 2), Some(30));
        assert_eq!(image.code_word(layout.code_base + 3), None);
        assert!(image.contains_code_addr(layout.code_base));
        assert!(!image.contains_code_addr(layout.code_base + 3));
        assert_eq!(image.loaded_words(), 5);
    }
}
