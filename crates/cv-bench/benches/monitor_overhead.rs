//! Criterion bench backing Table 2: real wall-clock cost of loading evaluation pages
//! under each monitor configuration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cv_apps::{evaluation_suite, Browser};
use cv_runtime::{EnvConfig, ManagedExecutionEnvironment, MonitorConfig};

fn monitor_overhead(c: &mut Criterion) {
    let browser = Browser::build();
    let pages: Vec<Vec<u32>> = evaluation_suite().into_iter().take(12).collect();
    let configs = [
        ("bare", MonitorConfig::bare()),
        ("mf", MonitorConfig::memory_firewall_only()),
        ("mf_ss", MonitorConfig::firewall_and_shadow_stack()),
        ("mf_hg", MonitorConfig::firewall_and_heap_guard()),
        ("mf_hg_ss", MonitorConfig::full()),
    ];
    let mut group = c.benchmark_group("page_load_overhead");
    group.sample_size(20);
    for (name, monitors) in configs {
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &monitors,
            |b, monitors| {
                b.iter(|| {
                    let mut env = ManagedExecutionEnvironment::new(
                        browser.image.clone(),
                        EnvConfig::with_monitors(*monitors),
                    );
                    for page in &pages {
                        std::hint::black_box(env.run(page));
                    }
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, monitor_overhead);
criterion_main!(benches);
