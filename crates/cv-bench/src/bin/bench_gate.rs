//! CI throughput gate: compare freshly produced `BENCH_*.json` records against
//! the committed baselines and fail on regressions beyond a tolerance.
//!
//! The benchmark bins (`fleet_scale`, `learning_overhead`, `snapshot_bench`)
//! write their records in CI, but until this gate nothing ever *checked* them —
//! a 10x throughput regression would upload a shiny artifact and stay green.
//! `bench_gate` parses the gated throughput metrics (higher-is-better only;
//! wall-clock noise on shared runners makes latency gating a flake machine) out
//! of both copies and fails the job when a fresh value drops more than the
//! tolerance below its baseline.
//!
//! Run with:
//!   `cargo run --release -p cv-bench --bin bench_gate -- [OPTIONS]`
//!
//! Options:
//!   --baseline DIR   directory holding the committed records (default `.`)
//!   --fresh DIR      directory holding the freshly produced records (default `.`)
//!   --tolerance F    allowed fractional drop, 0..1 (default 0.30 = fail
//!                    when fresh < 70% of baseline)
//!   --only FILE      gate only the metrics recorded in FILE (e.g.
//!                    `BENCH_fleet.json`) — the tracing-overhead guard compares
//!                    a recorder-enabled fleet run against the recorder-disabled
//!                    one at a tight tolerance without dragging the other bench
//!                    files into that comparison
//!   --cap FILE:KEY:MAX  (repeatable) absolute cap checked against the fresh
//!                    record only: every occurrence of KEY in FILE must be
//!                    <= MAX. For lower-is-better resource metrics with a fixed
//!                    budget instead of a baseline — the fleet-scale job holds
//!                    `BENCH_fleet_sweep.json:bytes_per_member:1024` this way.
//!   --caps-only      skip the baseline comparisons entirely and check only the
//!                    `--cap` budgets — for records (like the chaos transport
//!                    counters) that have caps but no gated throughput keys.
//!
//! The gate is also a *format* check: a gated metric missing from either copy,
//! or appearing a different number of times (array shape drift), fails — the
//! record schema is part of what CI pins.

use std::process::ExitCode;

/// The gated metrics: `(file, key, occurrences expected to match)` — every key is
/// a higher-is-better throughput. Occurrence counts are compared, not assumed,
/// so array-shaped records (the codec and delta-cut tables) are gated per row.
const GATES: &[(&str, &str)] = &[
    ("BENCH_fleet.json", "pages_per_second_sequential"),
    ("BENCH_fleet.json", "pages_per_second_parallel"),
    ("BENCH_learning.json", "events_per_second"),
    ("BENCH_snapshot.json", "encode_mb_s"),
    ("BENCH_snapshot.json", "decode_mb_s"),
];

/// What [`extract`] found for one key: the numeric occurrences in document
/// order, plus a note for every occurrence that was deliberately skipped
/// (JSON `null`, or a non-numeric value like the string `"NaN"`). Skips are
/// *reported*, never silent — a sentinel value quietly vanishing from a gated
/// comparison is exactly the kind of drift this bin exists to catch.
#[derive(Debug, Default, PartialEq)]
struct Extracted {
    values: Vec<f64>,
    notes: Vec<String>,
}

/// Extract every numeric value keyed by `key` from a (flat or nested) JSON text,
/// in document order. This deliberately avoids a JSON dependency: the records
/// are written by our own bins with `"key": number` shapes (plus the occasional
/// explicit `null` sentinel, e.g. `manager_parallel_speedup` on a run with no
/// parallel fan-out — those are skipped with a note, not treated as drift).
fn extract(json: &str, key: &str) -> Extracted {
    let needle = format!("\"{key}\"");
    let mut out = Extracted::default();
    let mut rest = json;
    let mut occurrence = 0usize;
    while let Some(at) = rest.find(&needle) {
        rest = &rest[at + needle.len()..];
        let Some(after_colon) = rest.trim_start().strip_prefix(':') else {
            continue;
        };
        let value = after_colon.trim_start();
        occurrence += 1;
        if let Some(after_null) = value.strip_prefix("null") {
            out.notes
                .push(format!("{key} occurrence {occurrence} is null — skipped"));
            rest = after_null;
            continue;
        }
        let end = value
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
            .unwrap_or(value.len());
        match value[..end].parse::<f64>() {
            Ok(number) => out.values.push(number),
            Err(_) => out.notes.push(format!(
                "{key} occurrence {occurrence} is not a JSON number (starts {:?}) — skipped",
                value.chars().take(8).collect::<String>()
            )),
        }
        rest = value;
    }
    out
}

/// One gated comparison that failed.
#[derive(Debug, PartialEq)]
enum Violation {
    /// The fresh value dropped more than the tolerance below the baseline.
    Regression {
        metric: String,
        baseline: f64,
        fresh: f64,
    },
    /// A gated metric is missing, or its occurrence count changed (format drift).
    Shape { metric: String, detail: String },
    /// A capped metric exceeded its absolute budget.
    Cap {
        metric: String,
        cap: f64,
        fresh: f64,
    },
}

/// Check one `--cap FILE:KEY:MAX` budget against the fresh record: every
/// occurrence of the key must be within the cap, and the key must occur at
/// least once (an absent budgeted metric is format drift, not a pass).
fn cap_metric(
    metric: &str,
    cap: f64,
    fresh: &[f64],
    violations: &mut Vec<Violation>,
) -> Vec<String> {
    if fresh.is_empty() {
        violations.push(Violation::Shape {
            metric: metric.to_string(),
            detail: "capped metric absent from fresh record".to_string(),
        });
        return Vec::new();
    }
    let mut lines = Vec::new();
    for (index, f) in fresh.iter().enumerate() {
        let ok = *f <= cap;
        let label = if fresh.len() == 1 {
            metric.to_string()
        } else {
            format!("{metric}[{index}]")
        };
        lines.push(format!(
            "  {} {label}: fresh {f:.1} vs cap {cap:.1}",
            if ok { "ok  " } else { "FAIL" },
        ));
        if !ok {
            violations.push(Violation::Cap {
                metric: label,
                cap,
                fresh: *f,
            });
        }
    }
    lines
}

/// Gate one metric: compare every occurrence pairwise.
fn gate_metric(
    metric: &str,
    baseline: &[f64],
    fresh: &[f64],
    tolerance: f64,
    violations: &mut Vec<Violation>,
) -> Vec<String> {
    if baseline.is_empty() || baseline.len() != fresh.len() {
        violations.push(Violation::Shape {
            metric: metric.to_string(),
            detail: format!(
                "baseline has {} occurrence(s), fresh has {}",
                baseline.len(),
                fresh.len()
            ),
        });
        return Vec::new();
    }
    let mut lines = Vec::new();
    for (index, (b, f)) in baseline.iter().zip(fresh).enumerate() {
        let floor = b * (1.0 - tolerance);
        let ok = *f >= floor;
        let label = if baseline.len() == 1 {
            metric.to_string()
        } else {
            format!("{metric}[{index}]")
        };
        lines.push(format!(
            "  {} {label}: baseline {b:.1}, fresh {f:.1} ({:+.1}%)",
            if ok { "ok  " } else { "FAIL" },
            (f / b - 1.0) * 100.0,
        ));
        if !ok {
            violations.push(Violation::Regression {
                metric: label,
                baseline: *b,
                fresh: *f,
            });
        }
    }
    lines
}

fn run(
    baseline_dir: &str,
    fresh_dir: &str,
    tolerance: f64,
    only: Option<&str>,
    caps: &[(String, String, f64)],
    caps_only: bool,
) -> Result<Vec<Violation>, String> {
    let mut violations = Vec::new();
    let mut current_file = "";
    let mut baseline_text = String::new();
    let mut fresh_text = String::new();
    let mut gated = 0usize;
    for (file, key) in GATES {
        if caps_only || only.is_some_and(|o| o != *file) {
            continue;
        }
        gated += 1;
        if *file != current_file {
            current_file = file;
            baseline_text = std::fs::read_to_string(format!("{baseline_dir}/{file}"))
                .map_err(|e| format!("cannot read baseline {baseline_dir}/{file}: {e}"))?;
            fresh_text = std::fs::read_to_string(format!("{fresh_dir}/{file}"))
                .map_err(|e| format!("cannot read fresh {fresh_dir}/{file}: {e}"))?;
            println!("{file}:");
        }
        let metric = format!("{file}::{key}");
        let baseline = extract(&baseline_text, key);
        let fresh = extract(&fresh_text, key);
        for note in baseline.notes.iter().chain(&fresh.notes) {
            println!("  note: {note}");
        }
        for line in gate_metric(
            &metric,
            &baseline.values,
            &fresh.values,
            tolerance,
            &mut violations,
        ) {
            println!("{line}");
        }
    }
    // Caps run against the fresh record only — they carry their own budget, so
    // no baseline copy (and no occurrence-count comparison) is involved, and
    // `--only` does not filter them: a cap passed explicitly is always meant.
    for (file, key, cap) in caps {
        gated += 1;
        let fresh_text = std::fs::read_to_string(format!("{fresh_dir}/{file}"))
            .map_err(|e| format!("cannot read fresh {fresh_dir}/{file}: {e}"))?;
        println!("{file} (caps):");
        let metric = format!("{file}::{key}");
        let fresh = extract(&fresh_text, key);
        for note in &fresh.notes {
            println!("  note: {note}");
        }
        for line in cap_metric(&metric, *cap, &fresh.values, &mut violations) {
            println!("{line}");
        }
    }
    if gated == 0 {
        return Err(match (caps_only, only) {
            (true, _) => "--caps-only requires at least one --cap".to_string(),
            (_, Some(file)) => format!("--only {file} matches no gated metric"),
            (_, None) => "no gated metrics".to_string(),
        });
    }
    Ok(violations)
}

fn main() -> ExitCode {
    let mut baseline_dir = ".".to_string();
    let mut fresh_dir = ".".to_string();
    let mut tolerance = 0.30f64;
    let mut only: Option<String> = None;
    let mut caps: Vec<(String, String, f64)> = Vec::new();
    let mut caps_only = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires an argument"))
        };
        match arg.as_str() {
            "--baseline" => baseline_dir = value("--baseline"),
            "--fresh" => fresh_dir = value("--fresh"),
            "--tolerance" => {
                tolerance = value("--tolerance")
                    .parse()
                    .expect("--tolerance requires a number in 0..1");
                assert!(
                    (0.0..1.0).contains(&tolerance),
                    "--tolerance must be in 0..1"
                );
            }
            "--only" => only = Some(value("--only")),
            "--caps-only" => caps_only = true,
            "--cap" => {
                let spec = value("--cap");
                let mut parts = spec.splitn(3, ':');
                let (file, key, max) = (parts.next(), parts.next(), parts.next());
                let (Some(file), Some(key), Some(max)) = (file, key, max) else {
                    panic!("--cap requires FILE:KEY:MAX, got {spec:?}");
                };
                let max: f64 = max
                    .parse()
                    .unwrap_or_else(|_| panic!("--cap: MAX must be numeric, got {max:?}"));
                caps.push((file.to_string(), key.to_string(), max));
            }
            other => panic!("unknown option {other}"),
        }
    }

    println!(
        "bench_gate: baseline '{baseline_dir}', fresh '{fresh_dir}', tolerance {:.0}%{}",
        tolerance * 100.0,
        match &only {
            Some(file) => format!(", only {file}"),
            None => String::new(),
        }
    );
    match run(
        &baseline_dir,
        &fresh_dir,
        tolerance,
        only.as_deref(),
        &caps,
        caps_only,
    ) {
        Err(message) => {
            eprintln!("bench_gate error: {message}");
            ExitCode::FAILURE
        }
        Ok(violations) if violations.is_empty() => {
            println!("bench_gate: all gated throughput metrics within tolerance");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            eprintln!("bench_gate: {} violation(s):", violations.len());
            for violation in &violations {
                match violation {
                    Violation::Regression {
                        metric,
                        baseline,
                        fresh,
                    } => eprintln!(
                        "  {metric}: fresh {fresh:.1} is below {:.0}% of baseline {baseline:.1}",
                        (1.0 - tolerance) * 100.0
                    ),
                    Violation::Shape { metric, detail } => {
                        eprintln!("  {metric}: record shape drifted ({detail})")
                    }
                    Violation::Cap { metric, cap, fresh } => {
                        eprintln!("  {metric}: fresh {fresh:.1} exceeds the {cap:.1} budget")
                    }
                }
            }
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RECORD: &str = r#"{
  "bench": "snapshot",
  "codec": [
    { "invariants": 1001, "encode_mb_s": 87.82, "decode_mb_s": 150.57 },
    { "invariants": 10002, "encode_mb_s": 65.98, "decode_mb_s": 149.68 }
  ],
  "events_per_second": 11041893.6,
  "negative": -3.5
}"#;

    #[test]
    fn extract_finds_every_occurrence_in_order() {
        assert_eq!(extract(RECORD, "encode_mb_s").values, vec![87.82, 65.98]);
        assert_eq!(
            extract(RECORD, "events_per_second").values,
            vec![11041893.6]
        );
        assert_eq!(extract(RECORD, "negative").values, vec![-3.5]);
        // A key that prefixes another must not match it.
        assert!(extract(RECORD, "encode_mb").values.is_empty());
    }

    #[test]
    fn extract_skips_null_with_a_note() {
        let record = r#"{"manager_parallel_speedup": null, "pages_per_second": 100.0}"#;
        let got = extract(record, "manager_parallel_speedup");
        assert!(got.values.is_empty(), "null is not a numeric occurrence");
        assert_eq!(got.notes.len(), 1, "…but it is noted, never silent");
        assert!(got.notes[0].contains("null"), "{:?}", got.notes);
        // A null occurrence does not hide later numeric ones.
        let record = r#"{"speedup": null, "speedup": 2.5}"#;
        let got = extract(record, "speedup");
        assert_eq!(got.values, vec![2.5]);
        assert_eq!(got.notes.len(), 1);
    }

    #[test]
    fn extract_reports_missing_key_as_empty_without_notes() {
        let got = extract(RECORD, "missing_key");
        assert!(got.values.is_empty());
        assert!(
            got.notes.is_empty(),
            "a key that never appears is a shape question for the gate, not a skip"
        );
        // …and gate_metric turns that emptiness into a Shape violation.
        let mut violations = Vec::new();
        gate_metric("f::missing_key", &got.values, &[1.0], 0.30, &mut violations);
        assert!(matches!(&violations[0], Violation::Shape { .. }));
    }

    #[test]
    fn extract_skips_nan_string_with_a_note() {
        let record = r#"{"rate": "NaN", "rate": 5.0}"#;
        let got = extract(record, "rate");
        assert_eq!(got.values, vec![5.0], "the string \"NaN\" is not a number");
        assert_eq!(got.notes.len(), 1);
        assert!(
            got.notes[0].contains("not a JSON number"),
            "{:?}",
            got.notes
        );
    }

    #[test]
    fn gate_passes_within_tolerance_and_fails_beyond() {
        let mut violations = Vec::new();
        gate_metric("m", &[100.0], &[71.0], 0.30, &mut violations);
        assert!(violations.is_empty(), "a 29% drop is within 30% tolerance");
        gate_metric("m", &[100.0], &[69.0], 0.30, &mut violations);
        assert_eq!(violations.len(), 1);
        assert!(matches!(
            &violations[0],
            Violation::Regression { fresh, .. } if *fresh == 69.0
        ));
        // Improvements always pass.
        violations.clear();
        gate_metric("m", &[100.0], &[250.0], 0.30, &mut violations);
        assert!(violations.is_empty());
    }

    #[test]
    fn gate_fails_on_shape_drift() {
        let mut violations = Vec::new();
        gate_metric("m", &[100.0, 90.0], &[100.0], 0.30, &mut violations);
        assert!(matches!(&violations[0], Violation::Shape { .. }));
        violations.clear();
        gate_metric("m", &[], &[], 0.30, &mut violations);
        assert!(
            matches!(&violations[0], Violation::Shape { .. }),
            "a gated metric absent from both copies is drift, not a pass"
        );
    }

    #[test]
    fn only_filter_restricts_gating_to_one_file() {
        let dir = std::env::temp_dir().join("bench_gate_only_test");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("BENCH_fleet.json"),
            "{\"pages_per_second_sequential\": 100.0, \"pages_per_second_parallel\": 200.0}\n",
        )
        .unwrap();
        let dir = dir.to_str().unwrap();
        // Only the fleet record exists, so an unfiltered run fails on the
        // missing learning/snapshot files — but `--only BENCH_fleet.json` gates
        // cleanly against the one file that is there.
        assert!(run(dir, dir, 0.05, None, &[], false).is_err());
        let violations = run(dir, dir, 0.05, Some("BENCH_fleet.json"), &[], false).unwrap();
        assert!(violations.is_empty(), "identical records gate clean");
        // A filter that matches nothing is an error, not a silent pass.
        assert!(run(dir, dir, 0.05, Some("BENCH_nope.json"), &[], false).is_err());
    }

    #[test]
    fn caps_only_skips_baselines_entirely() {
        let dir = std::env::temp_dir().join("bench_gate_caps_only_test");
        std::fs::create_dir_all(&dir).unwrap();
        // Only a chaos record exists — no baseline files at all. --caps-only
        // must gate its budgets without touching the GATES table.
        std::fs::write(
            dir.join("BENCH_fleet.json"),
            "{\"bench\": \"fleet_scale_chaos\", \"retransmits\": 894, \"envelopes_dropped\": 114}\n",
        )
        .unwrap();
        let dir = dir.to_str().unwrap();
        let caps = vec![
            (
                "BENCH_fleet.json".to_string(),
                "retransmits".to_string(),
                2000.0,
            ),
            (
                "BENCH_fleet.json".to_string(),
                "envelopes_dropped".to_string(),
                500.0,
            ),
        ];
        let violations = run(dir, dir, 0.30, None, &caps, true).unwrap();
        assert!(violations.is_empty());
        // Over budget fails; --caps-only with no caps is an error, not a pass.
        let tight = vec![(
            "BENCH_fleet.json".to_string(),
            "retransmits".to_string(),
            100.0,
        )];
        let violations = run(dir, dir, 0.30, None, &tight, true).unwrap();
        assert!(matches!(&violations[0], Violation::Cap { .. }));
        assert!(run(dir, dir, 0.30, None, &[], true).is_err());
    }

    #[test]
    fn caps_bound_every_occurrence_and_require_presence() {
        let mut violations = Vec::new();
        // All occurrences within budget: clean.
        let lines = cap_metric("f::bytes", 1024.0, &[900.0, 1024.0], &mut violations);
        assert_eq!(lines.len(), 2);
        assert!(violations.is_empty());
        // One row over budget: a Cap violation naming the row.
        cap_metric("f::bytes", 1024.0, &[900.0, 1500.0], &mut violations);
        assert!(matches!(
            &violations[0],
            Violation::Cap { metric, fresh, .. } if metric == "f::bytes[1]" && *fresh == 1500.0
        ));
        // A budgeted metric absent from the record is drift, not a pass.
        violations.clear();
        cap_metric("f::bytes", 1024.0, &[], &mut violations);
        assert!(matches!(&violations[0], Violation::Shape { .. }));
    }

    #[test]
    fn cap_only_invocation_gates_without_baselines() {
        let dir = std::env::temp_dir().join("bench_gate_cap_test");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("BENCH_fleet_sweep.json"),
            "{\"points\": [{\"bytes_per_member\": 500.0}, {\"bytes_per_member\": 800.0}]}\n",
        )
        .unwrap();
        let dir = dir.to_str().unwrap();
        let cap = |max: f64| {
            vec![(
                "BENCH_fleet_sweep.json".to_string(),
                "bytes_per_member".to_string(),
                max,
            )]
        };
        // `--only` names a file with no pairwise gates, but the cap still counts
        // toward "something was gated" — a cap-only run is not an error.
        let violations = run(
            dir,
            dir,
            0.30,
            Some("BENCH_fleet_sweep.json"),
            &cap(1024.0),
            false,
        )
        .unwrap();
        assert!(violations.is_empty());
        let violations = run(
            dir,
            dir,
            0.30,
            Some("BENCH_fleet_sweep.json"),
            &cap(600.0),
            false,
        )
        .unwrap();
        assert_eq!(violations.len(), 1);
        assert!(matches!(&violations[0], Violation::Cap { .. }));
    }

    #[test]
    fn array_rows_gate_individually() {
        let mut violations = Vec::new();
        let lines = gate_metric(
            "f::k",
            &[100.0, 100.0, 100.0],
            &[95.0, 60.0, 110.0],
            0.30,
            &mut violations,
        );
        assert_eq!(lines.len(), 3);
        assert_eq!(violations.len(), 1);
        assert!(matches!(
            &violations[0],
            Violation::Regression { metric, .. } if metric == "f::k[1]"
        ));
    }
}
