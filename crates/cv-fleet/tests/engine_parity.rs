//! Engine parity: the event-driven engine (shared image, interned patch
//! configurations, copy-on-write run state, sparse aux cells) must be
//! **observationally identical** to the classic per-member-environment
//! scheduler. Not "equivalent protocol outcomes" — byte-identical [`BatchLog`]s
//! and equal final invariant databases, on randomized histories mixing benign
//! traffic, repeated exploit presentations (monitor failures, check
//! installation, repair evaluation), members presented several times within one
//! epoch (the in-epoch aux-cell overlay), mid-epoch crash churn, rejoins
//! through snapshot bootstrap, and warm/cold joins.
//!
//! The deterministic 1,000-member case at the bottom is the scale claim: the
//! compact-member-state engine retraces the classic engine's history exactly
//! even when the classic engine carries a thousand full environments.

use cv_apps::{evaluation_suite, learning_suite, red_team_exploits, Browser};
use cv_core::ClearViewConfig;
use cv_fleet::{EngineKind, Fleet, FleetConfig, MembershipOp, Presentation};
use cv_isa::Word;
use proptest::prelude::*;

/// One epoch of randomized fleet history. Raw picks are reduced against the
/// alive (or down) member list at the moment the epoch runs, so every generated
/// plan is valid against every reachable fleet state.
#[derive(Debug, Clone)]
struct EpochPlan {
    /// (member pick, page pick) per presentation, in batch order.
    presentations: Vec<(usize, usize)>,
    /// Members killed mid-epoch (they run their presentations, then miss the
    /// boundary push — the delta-sync failure mode).
    kills: Vec<usize>,
    /// Members rejoined (full-snapshot bootstrap) at the epoch boundary.
    rejoins: Vec<usize>,
    /// Brand-new members added at the boundary: `true` = warm join (snapshot
    /// bootstrap), `false` = cold join (alive but unsynced — digests dropped).
    joins: Vec<bool>,
}

fn arb_epoch() -> impl Strategy<Value = EpochPlan> {
    (
        prop::collection::vec((0usize..1024, 0usize..1024), 1..12),
        prop::collection::vec(0usize..1024, 0..3),
        prop::collection::vec(0usize..1024, 0..3),
        prop::collection::vec(any::<bool>(), 0..2),
    )
        .prop_map(|(presentations, kills, rejoins, joins)| EpochPlan {
            presentations,
            kills,
            rejoins,
            joins,
        })
}

/// The page pool a history draws from: the benign evaluation suite plus the
/// red-team exploit pages, exploits repeated so failures (and therefore check
/// installation, repair evaluation, and patch pushes) are common.
fn page_pool(browser: &Browser) -> Vec<Vec<Word>> {
    let mut pool = evaluation_suite();
    for exploit in red_team_exploits(browser) {
        for _ in 0..3 {
            pool.push(exploit.page().to_vec());
        }
    }
    pool
}

/// Replay one generated history on one engine.
fn run_history(
    kind: EngineKind,
    nodes: usize,
    workers: usize,
    browser: &Browser,
    pool: &[Vec<Word>],
    epochs: &[EpochPlan],
) -> Fleet {
    let mut fleet = Fleet::new(
        browser.image.clone(),
        ClearViewConfig::default(),
        FleetConfig::new(nodes)
            .with_workers(workers)
            .with_engine(kind),
    );
    fleet.distributed_learning(&learning_suite());
    for plan in epochs {
        let alive: Vec<usize> = (0..fleet.node_count())
            .filter(|&n| fleet.is_member_alive(n))
            .collect();
        let batch: Vec<Presentation> = plan
            .presentations
            .iter()
            .map(|&(m, p)| Presentation::new(alive[m % alive.len()], pool[p % pool.len()].clone()))
            .collect();
        let mut kills: Vec<usize> = Vec::new();
        for &k in &plan.kills {
            let node = alive[k % alive.len()];
            if !kills.contains(&node) {
                kills.push(node);
            }
        }
        // Never take the whole fleet down: the next epoch needs someone alive.
        if kills.len() >= alive.len() {
            kills.pop();
        }
        fleet.run_epoch_churn(&batch, &kills);
        for &r in &plan.rejoins {
            let down: Vec<usize> = (0..fleet.node_count())
                .filter(|&n| !fleet.is_member_alive(n))
                .collect();
            if down.is_empty() {
                break;
            }
            fleet.apply_membership(MembershipOp::Rejoin {
                node: down[r % down.len()],
                checkpoint: None,
            });
        }
        for &warm in &plan.joins {
            if warm {
                fleet.apply_membership(MembershipOp::JoinWarm);
            } else {
                fleet.apply_membership(MembershipOp::JoinCold);
            }
        }
    }
    fleet
}

/// The full parity assertion: logs byte-identical, responder state identical,
/// final community model equal.
fn assert_parity(classic: &Fleet, event: &Fleet) {
    assert_eq!(
        classic.log(),
        event.log(),
        "event engine diverged from the classic scheduler"
    );
    assert_eq!(
        format!("{:?}", classic.log()),
        format!("{:?}", event.log()),
        "logs structurally equal but not byte-identical"
    );
    assert_eq!(
        format!("{:?}", classic.reports()),
        format!("{:?}", event.reports())
    );
    assert_eq!(
        classic.model().invariants,
        event.model().invariants,
        "final invariant databases diverged"
    );
    assert_eq!(classic.alive_count(), event.alive_count());
    assert_eq!(classic.node_count(), event.node_count());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn event_engine_is_observationally_identical_to_the_classic_scheduler(
        epochs in prop::collection::vec(arb_epoch(), 1..6),
        workers in 1usize..4,
    ) {
        let browser = Browser::build();
        let pool = page_pool(&browser);
        let classic = run_history(
            EngineKind::Legacy, 16, workers, &browser, &pool, &epochs,
        );
        let event = run_history(
            EngineKind::Event, 16, workers, &browser, &pool, &epochs,
        );
        assert_parity(&classic, &event);
    }
}

#[test]
fn engines_agree_at_a_thousand_members() {
    let browser = Browser::build();
    let exploits = red_team_exploits(&browser);
    let exploit = exploits.iter().find(|e| e.bugzilla == 290162).unwrap();
    let benign = evaluation_suite();

    let run = |kind: EngineKind| {
        let mut fleet = Fleet::new(
            browser.image.clone(),
            ClearViewConfig::default(),
            FleetConfig::new(1000).with_workers(4).with_engine(kind),
        );
        fleet.distributed_learning(&learning_suite());
        // Attack a handful of members amid benign background traffic until the
        // repair distributes, with one churn wave in the middle.
        for round in 0..8u64 {
            let mut batch: Vec<Presentation> = [3usize, 250, 251, 707, 999]
                .into_iter()
                .map(|node| Presentation::new(node, exploit.page()))
                .collect();
            for (i, page) in benign.iter().enumerate() {
                batch.push(Presentation::new((100 + i * 37) % 1000, page.clone()));
            }
            let kills: &[usize] = if round == 3 { &[40, 41, 42] } else { &[] };
            fleet.run_epoch_churn(&batch, kills);
            if round == 5 {
                for node in [40, 41, 42] {
                    fleet.apply_membership(MembershipOp::Rejoin {
                        node,
                        checkpoint: None,
                    });
                }
            }
        }
        fleet
    };

    let classic = run(EngineKind::Legacy);
    let event = run(EngineKind::Event);
    assert_parity(&classic, &event);

    // The history did real work: the attacked location is protected fleet-wide
    // on both engines.
    let location = browser.sym("vuln_290162_call");
    assert!(classic.is_protected_against(location));
    assert!(event.is_protected_against(location));

    // And the compact member state is the point: the event engine's
    // member-proportional bytes undercut the classic engine's full-environment
    // footprint by orders of magnitude.
    let classic_bytes = classic.metrics().member_state_bytes_last;
    let event_bytes = event.metrics().member_state_bytes_last;
    assert!(
        event_bytes * 100 < classic_bytes,
        "event engine resident state ({event_bytes} B) should be <1% of the \
         classic engine's ({classic_bytes} B)"
    );
    // The marginal cost of one more member must stay within tens of bytes (a
    // slot plus sparse aux cells). The ≤1 KiB *total* per-member budget —
    // which includes the fleet-wide shared state amortized over the members —
    // is gated at 10k+ members in the benches, where amortization is real; at
    // 1k members the one-off shared image dominates any per-member figure.
    let marginal = event_bytes as f64 / event.node_count() as f64;
    assert!(
        marginal <= 256.0,
        "member-proportional state is {marginal:.1} B/member"
    );
}
