//! The guest's flat, word-granular memory.

use crate::error::CrashKind;
use cv_isa::{Addr, BinaryImage, MemoryLayout, Segment, Word};

/// The guest memory: a flat array of 32-bit words, partitioned by [`MemoryLayout`].
///
/// All accesses are bounds- and segment-checked; violations are reported as
/// [`CrashKind`] values so the environment can turn them into guest crashes rather than
/// host panics.
#[derive(Debug, Clone)]
pub struct Memory {
    layout: MemoryLayout,
    words: Vec<Word>,
    /// When true, writes into the code segment crash (the normal W^X configuration).
    protect_code: bool,
}

impl Memory {
    /// Create a zeroed memory for `layout`.
    pub fn new(layout: MemoryLayout) -> Memory {
        Memory {
            layout,
            words: vec![0; layout.total_words()],
            protect_code: true,
        }
    }

    /// Create a memory with the image's code and data loaded at their segment bases.
    pub fn load(image: &BinaryImage) -> Memory {
        let mut mem = Memory::new(image.layout);
        let cb = image.layout.code_base as usize;
        mem.words[cb..cb + image.code.len()].copy_from_slice(&image.code);
        let db = image.layout.data_base as usize;
        mem.words[db..db + image.data.len()].copy_from_slice(&image.data);
        mem
    }

    /// The layout this memory was created with.
    pub fn layout(&self) -> MemoryLayout {
        self.layout
    }

    /// Read the word at `addr`.
    pub fn read(&self, addr: Addr) -> Result<Word, CrashKind> {
        if !self.layout.is_mapped(addr) {
            return Err(CrashKind::UnmappedAccess { addr });
        }
        Ok(self.words[addr as usize])
    }

    /// Write the word at `addr`.
    ///
    /// Writes to the code segment crash (the image is mapped read-only/execute, as in a
    /// normal Win32 process).
    pub fn write(&mut self, addr: Addr, value: Word) -> Result<(), CrashKind> {
        match self.layout.segment_of(addr) {
            Segment::Unmapped => Err(CrashKind::UnmappedAccess { addr }),
            Segment::Code if self.protect_code => Err(CrashKind::CodeWrite { addr }),
            _ => {
                self.words[addr as usize] = value;
                Ok(())
            }
        }
    }

    /// Read without segment checks (used by diagnostics and the heap allocator, which
    /// operates entirely inside the heap segment).
    pub(crate) fn read_raw(&self, addr: Addr) -> Word {
        self.words[addr as usize]
    }

    /// Write without segment checks (heap allocator book-keeping).
    pub(crate) fn write_raw(&mut self, addr: Addr, value: Word) {
        self.words[addr as usize] = value;
    }

    /// Copy `src.len()` words into guest memory starting at `dst`, bypassing protection
    /// (used by the environment to stage input data in the data segment).
    pub fn write_slice_raw(&mut self, dst: Addr, src: &[Word]) -> Result<(), CrashKind> {
        let end = dst as usize + src.len();
        if end > self.words.len() {
            return Err(CrashKind::UnmappedAccess { addr: end as Addr });
        }
        self.words[dst as usize..end].copy_from_slice(src);
        Ok(())
    }

    /// Snapshot `len` words starting at `addr` (diagnostics and tests).
    pub fn read_slice(&self, addr: Addr, len: usize) -> Result<Vec<Word>, CrashKind> {
        let end = addr as usize + len;
        if end > self.words.len() {
            return Err(CrashKind::UnmappedAccess { addr: end as Addr });
        }
        Ok(self.words[addr as usize..end].to_vec())
    }

    /// Total mapped words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Never empty for a valid layout, but provided for completeness.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_isa::ProgramBuilder;

    fn tiny_image() -> BinaryImage {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        b.halt();
        b.set_entry(main);
        b.data_words(&[7, 8, 9]);
        b.build().unwrap()
    }

    #[test]
    fn load_places_code_and_data() {
        let image = tiny_image();
        let mem = Memory::load(&image);
        assert_eq!(mem.read(image.layout.code_base).unwrap(), image.code[0]);
        assert_eq!(mem.read(image.layout.data_base).unwrap(), 7);
        assert_eq!(mem.read(image.layout.data_base + 2).unwrap(), 9);
    }

    #[test]
    fn unmapped_read_is_a_crash() {
        let mem = Memory::new(MemoryLayout::default());
        assert!(matches!(mem.read(0), Err(CrashKind::UnmappedAccess { .. })));
        let end = MemoryLayout::default().stack_end();
        assert!(matches!(
            mem.read(end),
            Err(CrashKind::UnmappedAccess { .. })
        ));
    }

    #[test]
    fn code_writes_are_rejected() {
        let image = tiny_image();
        let mut mem = Memory::load(&image);
        let err = mem.write(image.layout.code_base, 0xdead).unwrap_err();
        assert!(matches!(err, CrashKind::CodeWrite { .. }));
    }

    #[test]
    fn heap_and_stack_writes_succeed() {
        let layout = MemoryLayout::default();
        let mut mem = Memory::new(layout);
        mem.write(layout.heap_base + 10, 123).unwrap();
        assert_eq!(mem.read(layout.heap_base + 10).unwrap(), 123);
        mem.write(layout.stack_base + 10, 456).unwrap();
        assert_eq!(mem.read(layout.stack_base + 10).unwrap(), 456);
    }

    #[test]
    fn read_slice_bounds_checked() {
        let layout = MemoryLayout::default();
        let mem = Memory::new(layout);
        assert!(mem.read_slice(layout.stack_end() - 2, 4).is_err());
        assert_eq!(mem.read_slice(layout.heap_base, 3).unwrap(), vec![0, 0, 0]);
    }
}
