//! Offline stand-in for `rand`: the `StdRng` / `SeedableRng` / `Rng::gen_range` subset
//! this workspace uses, backed by a SplitMix64 generator. Deterministic for a given
//! seed (the workloads in `cv-apps` rely on seeded determinism, not on any particular
//! stream, so the exact values differing from upstream `rand` is fine).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of raw random 64-bit values.
pub trait RngCore {
    /// The next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// A type that can be seeded from a `u64`.
pub trait SeedableRng: Sized {
    /// Construct the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling a value of type `T` from a range, driven by a raw generator.
pub trait SampleRange<T> {
    /// Draw one sample.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    /// Sample uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(6u32..=12);
            assert!((6..=12).contains(&w));
            let s = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&s));
        }
    }
}
