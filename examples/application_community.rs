//! The application community (Section 3): amortized learning across members, an attack
//! on one member, and immunity for members that were never exposed.
//!
//! Run with: `cargo run --example application_community`

use clearview::apps::{learning_suite, red_team_exploits, Browser};
use clearview::community::{Community, Message};
use clearview::core::ClearViewConfig;
use clearview::runtime::RunStatus;

fn main() {
    let browser = Browser::build();
    let mut community = Community::new(browser.image.clone(), ClearViewConfig::default(), 4);

    // Amortized parallel learning: the learning pages are divided among the members;
    // each uploads only its locally inferred invariants.
    community.distributed_learning(&learning_suite());
    println!(
        "community of {} members learned {} invariants",
        community.node_count(),
        community.model().invariants.len()
    );

    // The attacker repeatedly targets member 0 with one exploit.
    let exploit = red_team_exploits(&browser)
        .into_iter()
        .find(|e| e.bugzilla == 312278)
        .unwrap();
    for attempt in 1..=8 {
        let out = community.browse(0, exploit.page());
        let status = match out.status {
            RunStatus::Completed => "survived",
            RunStatus::Failure(_) => "blocked",
            RunStatus::Crash(_) => "crashed",
        };
        println!("attack {attempt} on member 0: {status}");
        if matches!(out.status, RunStatus::Completed) {
            break;
        }
    }

    // Member 3 has never seen this attack; the distributed patch protects it anyway.
    let out = community.browse(3, exploit.page());
    println!(
        "member 3 (never exposed) presented with the exploit: {}",
        if matches!(out.status, RunStatus::Completed) {
            "survived — protection without exposure"
        } else {
            "NOT protected"
        }
    );

    // The console's message log shows the protocol.
    println!("\nmanagement console log:");
    for message in community.log() {
        match message {
            Message::InvariantUpload { node, invariants } => {
                println!("  member {node} uploaded {invariants} invariants")
            }
            Message::FailureNotification { node, location } => {
                println!("  member {node} reported a failure at 0x{location:x}")
            }
            Message::ChecksDistributed {
                location,
                invariants,
            } => {
                println!("  distributed {invariants} invariant checks for 0x{location:x}")
            }
            Message::ChecksRemoved { location } => {
                println!("  removed invariant checks for 0x{location:x}")
            }
            Message::RepairDistributed {
                location,
                description,
            } => {
                println!("  distributed repair for 0x{location:x}: {description}")
            }
            Message::RepairRemoved { location } => println!("  removed repair for 0x{location:x}"),
            Message::StateSync { bytes } => {
                println!("  synced a member from a {bytes}-byte snapshot/delta")
            }
            Message::ObservationReport {
                node,
                location,
                observations,
            } => {
                println!("  member {node} reported {observations} observations for 0x{location:x}")
            }
        }
    }
}
