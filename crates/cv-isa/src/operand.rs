//! Operands and memory references.

use crate::Reg;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A memory reference of the form `[base + index*scale + disp]`.
///
/// This mirrors the x86 SIB addressing mode; it is the address computation that the
/// Daikon x86 front end records for every executed instruction ("all addresses that the
/// instruction computes", Section 2.2.1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MemRef {
    /// Base register, if any.
    pub base: Option<Reg>,
    /// Index register, if any.
    pub index: Option<Reg>,
    /// Scale applied to the index register (1, 2, 4 or 8). Ignored when `index` is `None`.
    pub scale: u8,
    /// Signed displacement in words.
    pub disp: i32,
}

impl MemRef {
    /// A reference to an absolute address.
    pub fn abs(addr: u32) -> MemRef {
        MemRef {
            base: None,
            index: None,
            scale: 1,
            disp: addr as i32,
        }
    }

    /// `[base + disp]`.
    pub fn base_disp(base: Reg, disp: i32) -> MemRef {
        MemRef {
            base: Some(base),
            index: None,
            scale: 1,
            disp,
        }
    }

    /// `[base]`.
    pub fn base(base: Reg) -> MemRef {
        MemRef::base_disp(base, 0)
    }

    /// `[base + index*scale + disp]`.
    pub fn indexed(base: Reg, index: Reg, scale: u8, disp: i32) -> MemRef {
        MemRef {
            base: Some(base),
            index: Some(index),
            scale,
            disp,
        }
    }

    /// Registers read when computing this address.
    pub fn regs_read(&self) -> Vec<Reg> {
        let mut out = Vec::with_capacity(2);
        if let Some(b) = self.base {
            out.push(b);
        }
        if let Some(i) = self.index {
            out.push(i);
        }
        out
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        let mut wrote = false;
        if let Some(b) = self.base {
            write!(f, "{b}")?;
            wrote = true;
        }
        if let Some(i) = self.index {
            if wrote {
                write!(f, "+")?;
            }
            write!(f, "{i}*{}", self.scale.max(1))?;
            wrote = true;
        }
        if self.disp != 0 || !wrote {
            if wrote && self.disp >= 0 {
                write!(f, "+")?;
            }
            write!(f, "{}", self.disp)?;
        }
        write!(f, "]")
    }
}

/// An instruction operand: register, immediate, or memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Operand {
    /// A register operand.
    Reg(Reg),
    /// An immediate 32-bit value.
    Imm(u32),
    /// A memory operand.
    Mem(MemRef),
}

impl Operand {
    /// Convenience constructor for a signed immediate.
    pub fn imm_i32(v: i32) -> Operand {
        Operand::Imm(v as u32)
    }

    /// True if this operand can be written to (registers and memory, not immediates).
    pub fn is_writable(&self) -> bool {
        !matches!(self, Operand::Imm(_))
    }

    /// True if this operand is a memory reference.
    pub fn is_mem(&self) -> bool {
        matches!(self, Operand::Mem(_))
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<u32> for Operand {
    fn from(v: u32) -> Self {
        Operand::Imm(v)
    }
}

impl From<MemRef> for Operand {
    fn from(m: MemRef) -> Self {
        Operand::Mem(m)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "0x{v:x}"),
            Operand::Mem(m) => write!(f, "{m}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memref_display() {
        let m = MemRef::base_disp(Reg::Ebp, 12);
        assert_eq!(m.to_string(), "[ebp+12]");
        let m = MemRef::base_disp(Reg::Ebp, -4);
        assert_eq!(m.to_string(), "[ebp-4]");
        let m = MemRef::indexed(Reg::Ebx, Reg::Ecx, 4, 0);
        assert_eq!(m.to_string(), "[ebx+ecx*4]");
        let m = MemRef::abs(0x1000);
        assert_eq!(m.to_string(), "[4096]");
    }

    #[test]
    fn regs_read_collects_base_and_index() {
        let m = MemRef::indexed(Reg::Ebx, Reg::Ecx, 4, 8);
        assert_eq!(m.regs_read(), vec![Reg::Ebx, Reg::Ecx]);
        assert!(MemRef::abs(1).regs_read().is_empty());
    }

    #[test]
    fn operand_writability() {
        assert!(Operand::Reg(Reg::Eax).is_writable());
        assert!(Operand::Mem(MemRef::base(Reg::Esp)).is_writable());
        assert!(!Operand::Imm(3).is_writable());
    }

    #[test]
    fn operand_conversions() {
        assert_eq!(Operand::from(Reg::Eax), Operand::Reg(Reg::Eax));
        assert_eq!(Operand::from(5u32), Operand::Imm(5));
        assert_eq!(Operand::imm_i32(-1), Operand::Imm(u32::MAX));
    }
}
