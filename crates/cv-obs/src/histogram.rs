//! Fixed-bucket latency histograms.
//!
//! The recorder keeps one histogram per span name so a long-running fleet can be
//! monitored in O(1) memory even while the event buffer is drained periodically.
//! Buckets are powers of two in **microseconds**: bucket 0 holds sub-microsecond
//! spans, bucket `i` holds `[2^(i-1), 2^i)` µs. That caps quantile error at 2×,
//! which is plenty for "where did the epoch go" monitoring (the exact per-run
//! quantiles in [`Summary`](crate::Summary) are computed from the events
//! themselves).

use std::time::Duration;

/// Number of buckets: bucket 63 holds everything ≥ 2⁶² µs (≈146 millennia),
/// so no duration ever falls off the end.
const BUCKETS: usize = 64;

/// A fixed-bucket (log₂ microsecond) latency histogram.
#[derive(Debug, Clone)]
pub struct FixedHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    total_nanos: u128,
    max_nanos: u64,
}

impl Default for FixedHistogram {
    fn default() -> Self {
        FixedHistogram::new()
    }
}

impl FixedHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        FixedHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            total_nanos: 0,
            max_nanos: 0,
        }
    }

    fn bucket_of(duration: Duration) -> usize {
        let micros = duration.as_micros().min(u64::MAX as u128) as u64;
        (u64::BITS - micros.leading_zeros()).min(BUCKETS as u32 - 1) as usize
    }

    /// Record one latency sample.
    pub fn record(&mut self, duration: Duration) {
        self.buckets[Self::bucket_of(duration)] += 1;
        self.count += 1;
        self.total_nanos += duration.as_nanos();
        self.max_nanos = self.max_nanos.max(duration.as_nanos() as u64);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples.
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.total_nanos.min(u64::MAX as u128) as u64)
    }

    /// The largest recorded sample.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_nanos)
    }

    /// Mean sample.
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            Duration::from_nanos((self.total_nanos / self.count as u128) as u64)
        }
    }

    /// Approximate quantile `q` (0..=1) by nearest rank over the buckets: the
    /// returned value is the geometric midpoint of the bucket holding the
    /// rank-`⌈q·n⌉` sample (so it is within 2× of the true quantile), clamped to
    /// the observed maximum.
    pub fn quantile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Bucket i covers [2^(i-1), 2^i) µs; its geometric midpoint is
                // 3·2^(i-2) µs. Bucket 0 (sub-µs) reports 500 ns.
                let nanos = if i == 0 {
                    500
                } else {
                    3u64.saturating_mul(1u64 << (i - 1)) / 2 * 1_000
                };
                return Duration::from_nanos(nanos).min(self.max());
            }
        }
        self.max()
    }

    /// Lower bound of the smallest non-empty bucket — the tightest statement
    /// the histogram can make about its minimum sample (exporters pair it
    /// with the exact [`max`](FixedHistogram::max) to bracket the data).
    pub fn min_bound(&self) -> Duration {
        self.nonzero_buckets()
            .next()
            .map(|(lower, _)| lower)
            .unwrap_or(Duration::ZERO)
    }

    /// Iterate the non-empty buckets as `(lower bound, count)` pairs.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (Duration, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| {
                let lower_micros = if i == 0 { 0 } else { 1u64 << (i - 1) };
                (Duration::from_micros(lower_micros), n)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2_micros() {
        assert_eq!(FixedHistogram::bucket_of(Duration::from_nanos(10)), 0);
        assert_eq!(FixedHistogram::bucket_of(Duration::from_micros(1)), 1);
        assert_eq!(FixedHistogram::bucket_of(Duration::from_micros(2)), 2);
        assert_eq!(FixedHistogram::bucket_of(Duration::from_micros(3)), 2);
        assert_eq!(FixedHistogram::bucket_of(Duration::from_micros(1024)), 11);
        assert_eq!(FixedHistogram::bucket_of(Duration::from_secs(3600)), 32);
    }

    #[test]
    fn quantiles_are_within_a_bucket_of_truth() {
        let mut h = FixedHistogram::new();
        for micros in 1..=1000u64 {
            h.record(Duration::from_micros(micros));
        }
        assert_eq!(h.count(), 1000);
        let median = h.quantile(0.5);
        // The true median is 500µs; bucket resolution allows 2x error.
        assert!(median >= Duration::from_micros(250) && median <= Duration::from_micros(1000));
        let p99 = h.quantile(0.99);
        assert!(p99 >= Duration::from_micros(495) && p99 <= Duration::from_micros(1000));
        assert!(h.quantile(1.0) <= h.max());
        assert!(median <= p99, "quantiles are monotonic");
    }

    #[test]
    fn totals_and_mean_are_exact() {
        let mut h = FixedHistogram::new();
        h.record(Duration::from_micros(10));
        h.record(Duration::from_micros(30));
        assert_eq!(h.total(), Duration::from_micros(40));
        assert_eq!(h.mean(), Duration::from_micros(20));
        assert_eq!(h.max(), Duration::from_micros(30));
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = FixedHistogram::new();
        assert_eq!(h.quantile(0.5), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.nonzero_buckets().count(), 0);
        assert_eq!(h.min_bound(), Duration::ZERO);
    }

    #[test]
    fn min_bound_is_the_first_nonempty_bucket_floor() {
        let mut h = FixedHistogram::new();
        h.record(Duration::from_micros(3)); // bucket [2, 4) µs
        h.record(Duration::from_micros(100));
        assert_eq!(h.min_bound(), Duration::from_micros(2));
        assert!(h.min_bound() <= Duration::from_micros(3));
    }
}
