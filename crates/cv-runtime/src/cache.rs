//! The code cache: basic blocks decoded on first execution.
//!
//! The Determina Managed Program Execution Environment executes all code out of a code
//! cache of dynamically built basic blocks; patches are applied by ejecting the affected
//! blocks and re-building them with instrumentation (Section 2.1). The cache here plays
//! the same role: it decodes blocks out of the stripped image on demand, counts builds
//! and ejections (which dominate the "cache warm-up" component of the paper's Table 3
//! timing), and supports ejecting the blocks that contain a patched address.

use crate::error::RuntimeError;
use cv_isa::{decode, Addr, BinaryImage, InstWithAddr};
use std::collections::HashMap;

/// A decoded basic block: a maximal straight-line instruction sequence ending at a
/// control transfer (or at the end of the loaded code).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// Address of the first instruction.
    pub start: Addr,
    /// The instructions of the block, in order.
    pub insts: Vec<InstWithAddr>,
}

impl BasicBlock {
    /// One past the last word of the block.
    pub fn end(&self) -> Addr {
        self.insts
            .last()
            .map(|i| i.next_addr())
            .unwrap_or(self.start)
    }

    /// True if `addr` is the address of one of the block's instructions.
    pub fn contains_inst(&self, addr: Addr) -> bool {
        self.insts.iter().any(|i| i.addr == addr)
    }
}

/// The code cache.
#[derive(Debug, Default)]
pub struct CodeCache {
    blocks: HashMap<Addr, BasicBlock>,
    /// Instruction lookup across all cached blocks.
    inst_index: HashMap<Addr, InstWithAddr>,
    /// Blocks decoded since creation (includes re-builds after ejection).
    pub blocks_built: u64,
    /// Blocks ejected (for patch application/removal).
    pub blocks_ejected: u64,
    /// Instruction fetches served from the cache.
    pub hits: u64,
}

impl CodeCache {
    /// Create an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Fetch the instruction at `addr`, building the containing block if needed.
    ///
    /// Returns the instruction and, when a new block was built to satisfy the fetch, the
    /// start address of that block (so the environment can notify the tracer of a
    /// first-time block execution).
    pub fn fetch(
        &mut self,
        image: &BinaryImage,
        addr: Addr,
    ) -> Result<(InstWithAddr, Option<Addr>), RuntimeError> {
        if let Some(iwa) = self.inst_index.get(&addr) {
            self.hits += 1;
            return Ok((*iwa, None));
        }
        let block = Self::build_block(image, addr)?;
        let start = block.start;
        for iwa in &block.insts {
            self.inst_index.insert(iwa.addr, *iwa);
        }
        let first = block.insts[0];
        self.blocks.insert(start, block);
        self.blocks_built += 1;
        Ok((first, Some(start)))
    }

    /// Decode the basic block starting at `addr` without caching it (used by the
    /// learning component's procedure discovery as well).
    pub fn build_block(image: &BinaryImage, addr: Addr) -> Result<BasicBlock, RuntimeError> {
        if !image.contains_code_addr(addr) {
            return Err(RuntimeError::AddressOutsideCode(addr));
        }
        let mut insts = Vec::new();
        let mut cur = addr;
        loop {
            let offset = (cur - image.layout.code_base) as usize;
            let (inst, len) = decode(&image.code, offset)?;
            let iwa = InstWithAddr {
                addr: cur,
                inst,
                len,
            };
            let ends = inst.ends_basic_block();
            cur = iwa.next_addr();
            insts.push(iwa);
            if ends || !image.contains_code_addr(cur) {
                break;
            }
        }
        Ok(BasicBlock { start: addr, insts })
    }

    /// Eject every cached block containing the instruction at `addr`. Returns the number
    /// of blocks ejected. This is how patches are applied to (and removed from) a
    /// running application: the stale block leaves the cache and is re-built, now passing
    /// through the instrumentation plugins, the next time it executes.
    pub fn eject_blocks_containing(&mut self, addr: Addr) -> usize {
        let stale: Vec<Addr> = self
            .blocks
            .values()
            .filter(|b| b.contains_inst(addr))
            .map(|b| b.start)
            .collect();
        for start in &stale {
            if let Some(block) = self.blocks.remove(start) {
                for iwa in &block.insts {
                    self.inst_index.remove(&iwa.addr);
                }
                self.blocks_ejected += 1;
            }
        }
        stale.len()
    }

    /// Drop every cached block (a "cold cache", as after a restart).
    pub fn flush(&mut self) {
        self.blocks.clear();
        self.inst_index.clear();
    }

    /// The cached block starting exactly at `addr`, if any.
    pub fn block_at(&self, addr: Addr) -> Option<&BasicBlock> {
        self.blocks.get(&addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_isa::{Cond, ProgramBuilder, Reg};

    fn image_with_branches() -> BinaryImage {
        let mut b = ProgramBuilder::new();
        let main = b.function("main");
        b.mov(Reg::Eax, 1u32);
        b.cmp(Reg::Eax, 0u32);
        let skip = b.new_label("skip");
        b.jcc(Cond::Eq, skip);
        b.add(Reg::Eax, 2u32);
        b.bind(skip);
        b.halt();
        b.set_entry(main);
        b.build().unwrap()
    }

    #[test]
    fn fetch_builds_block_ending_at_branch() {
        let image = image_with_branches();
        let mut cache = CodeCache::new();
        let (first, built) = cache.fetch(&image, image.entry).unwrap();
        assert_eq!(first.addr, image.entry);
        assert_eq!(built, Some(image.entry));
        let block = cache.block_at(image.entry).unwrap();
        // mov, cmp, jcc — the block ends at the conditional jump.
        assert_eq!(block.insts.len(), 3);
        assert!(block.insts.last().unwrap().inst.ends_basic_block());
    }

    #[test]
    fn second_fetch_is_a_hit() {
        let image = image_with_branches();
        let mut cache = CodeCache::new();
        cache.fetch(&image, image.entry).unwrap();
        let (_, built) = cache.fetch(&image, image.entry).unwrap();
        assert_eq!(built, None);
        assert_eq!(cache.blocks_built, 1);
        assert_eq!(cache.hits, 1);
    }

    #[test]
    fn fetch_mid_block_instruction_hits_after_block_built() {
        let image = image_with_branches();
        let mut cache = CodeCache::new();
        let (first, _) = cache.fetch(&image, image.entry).unwrap();
        // The cmp instruction directly follows the mov.
        let cmp_addr = first.next_addr();
        let (cmp, built) = cache.fetch(&image, cmp_addr).unwrap();
        assert_eq!(built, None, "served from the already-built block");
        assert_eq!(cmp.addr, cmp_addr);
    }

    #[test]
    fn eject_removes_blocks_containing_address() {
        let image = image_with_branches();
        let mut cache = CodeCache::new();
        let (first, _) = cache.fetch(&image, image.entry).unwrap();
        let cmp_addr = first.next_addr();
        assert_eq!(cache.eject_blocks_containing(cmp_addr), 1);
        assert_eq!(cache.block_count(), 0);
        assert_eq!(cache.blocks_ejected, 1);
        // Re-fetching rebuilds.
        let (_, built) = cache.fetch(&image, image.entry).unwrap();
        assert!(built.is_some());
        assert_eq!(cache.blocks_built, 2);
    }

    #[test]
    fn fetch_outside_code_is_an_error() {
        let image = image_with_branches();
        let mut cache = CodeCache::new();
        assert!(matches!(
            cache.fetch(&image, 0x9_0000),
            Err(RuntimeError::AddressOutsideCode(_))
        ));
    }

    #[test]
    fn flush_empties_the_cache() {
        let image = image_with_branches();
        let mut cache = CodeCache::new();
        cache.fetch(&image, image.entry).unwrap();
        cache.flush();
        assert_eq!(cache.block_count(), 0);
        let (_, built) = cache.fetch(&image, image.entry).unwrap();
        assert!(built.is_some());
    }
}
