//! # cv-apps — the synthetic vulnerable browser and its workloads
//!
//! The Red Team exercise protected Firefox 1.0.0 and attacked it with ten exploits
//! through web pages (Section 4 of the paper). This crate provides the equivalent
//! application and workloads for the simulated substrate:
//!
//! * [`Browser`] — a guest program with ten seeded defects, one per Bugzilla entry the
//!   Red Team targeted, each reproducing the paper's error class, learnable invariant,
//!   detection monitor, and successful repair strategy.
//! * [`red_team_exploits`] / [`Exploit`] — the attack pages (plus variants) and the
//!   per-exploit metadata of Table 1.
//! * [`learning_suite`], [`expanded_learning_suite`], [`evaluation_suite`] — the benign
//!   page workloads used for learning, for the post-exercise reconfiguration of exploit
//!   325403, and for the 57-page repair-quality / false-positive evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod browser;
mod exploits;
mod pages;

pub use browser::{feature, Browser, DONE_MARKER};
pub use exploits::{red_team_exploits, Exploit, Reconfiguration, MULTI_FAILURE_TARGETS};
pub use pages::{
    benign_array_311710, benign_gc_realloc_312278, benign_gif_285595, benign_grow_325403,
    benign_hostname_307259, benign_js_type_290162, benign_js_type_295854, benign_string_296134,
    benign_widget_269095, benign_widget_320182, evaluation_suite, expanded_learning_suite,
    learning_suite,
};
