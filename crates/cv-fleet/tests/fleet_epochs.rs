//! Epoch-batched community behaviour: attacks on a few members immunize the whole
//! fleet, benign traffic never triggers a response, and the batched log carries the
//! protocol.

use cv_apps::{evaluation_suite, learning_suite, red_team_exploits, Browser, Exploit};
use cv_core::ClearViewConfig;
use cv_fleet::{Fleet, FleetConfig, FleetMessage, Presentation};

const NODES: usize = 96;

fn learned_fleet(nodes: usize, workers: usize) -> (Fleet, Browser) {
    let browser = Browser::build();
    let mut fleet = Fleet::new(
        browser.image.clone(),
        ClearViewConfig::default(),
        FleetConfig::new(nodes).with_workers(workers),
    );
    fleet.distributed_learning(&learning_suite());
    (fleet, browser)
}

fn exploit(browser: &Browser, bugzilla: u32) -> Exploit {
    red_team_exploits(browser)
        .into_iter()
        .find(|e| e.bugzilla == bugzilla)
        .unwrap()
}

/// Run attack epochs (the same few members attacked every epoch) until the fleet is
/// protected or `max_epochs` elapse; returns the epochs used.
fn attack_until_protected(
    fleet: &mut Fleet,
    exploit: &Exploit,
    attackers: &[usize],
    location: u32,
    max_epochs: u64,
) -> u64 {
    for round in 1..=max_epochs {
        let batch: Vec<Presentation> = attackers
            .iter()
            .map(|&node| Presentation::new(node, exploit.page()))
            .collect();
        let outcome = fleet.run_epoch(&batch);
        if fleet.is_protected_against(location) && outcome.completed() == batch.len() {
            return round;
        }
    }
    panic!(
        "fleet not protected after {max_epochs} epochs (phase: {:?})",
        fleet.phase_of(location)
    );
}

#[test]
fn a_few_attacked_members_immunize_the_whole_fleet() {
    let (mut fleet, browser) = learned_fleet(NODES, 4);
    let exploit = exploit(&browser, 290162);
    let location = browser.sym("vuln_290162_call");
    let attackers = [0usize, 17, 40, 41, 95];

    let epochs = attack_until_protected(&mut fleet, &exploit, &attackers, location, 12);
    assert!(epochs >= 3, "checking takes at least a couple of epochs");

    // Every member — almost all never attacked — now survives its first exposure.
    let verify: Vec<Presentation> = (0..NODES)
        .map(|node| Presentation::new(node, exploit.page()))
        .collect();
    let outcome = fleet.run_epoch(&verify);
    assert_eq!(
        outcome.completed(),
        NODES,
        "every member survives via the distributed patch"
    );

    // Immunity metrics recorded the timeline.
    let record = fleet.metrics().immunity(location).expect("immunity record");
    assert_eq!(record.first_failure_epoch, 1);
    assert!(record.epochs_to_immunity().is_some());

    // The batched log has a patch plan that reached every member, and batching beat
    // the per-event protocol on the wire.
    assert!(fleet.log().messages().iter().any(
        |m| matches!(m, FleetMessage::PatchPushes { members, plan, .. }
            if *members == NODES && !plan.is_empty())
    ));
    assert!(fleet.log().batched_wire_words() < fleet.log().unbatched_wire_words());
}

#[test]
fn benign_epochs_never_trigger_a_response() {
    let (mut fleet, _) = learned_fleet(32, 4);
    let pages = evaluation_suite();
    let batch: Vec<Presentation> = pages
        .iter()
        .enumerate()
        .map(|(i, page)| Presentation::new(i % 32, page.clone()))
        .collect();
    for _ in 0..3 {
        let outcome = fleet.run_epoch(&batch);
        assert_eq!(outcome.completed(), batch.len());
        assert_eq!(outcome.blocked(), 0);
    }
    assert!(fleet.reports().is_empty());
    assert!(!fleet
        .log()
        .messages()
        .iter()
        .any(|m| matches!(m, FleetMessage::Failures { .. })));
    assert!(fleet.metrics().pages_per_second() > 0.0);
}

#[test]
fn parallel_and_sequential_fleets_reach_the_same_protocol_outcome() {
    let browser = Browser::build();
    let exploit = exploit(&browser, 290162);
    let location = browser.sym("vuln_290162_call");

    let mut outcomes = Vec::new();
    for (workers, parallel) in [(1, false), (4, true)] {
        let mut config = FleetConfig::new(24).with_workers(workers);
        if !parallel {
            config = config.sequential();
        }
        let mut fleet = Fleet::new(browser.image.clone(), ClearViewConfig::default(), config);
        fleet.distributed_learning(&learning_suite());
        let epochs = attack_until_protected(&mut fleet, &exploit, &[3, 9], location, 12);
        let verify: Vec<Presentation> = (0..24)
            .map(|node| Presentation::new(node, exploit.page()))
            .collect();
        let completed = fleet.run_epoch(&verify).completed();
        outcomes.push((epochs, completed, fleet.model().invariants.len()));
    }
    assert_eq!(
        outcomes[0], outcomes[1],
        "worker fan-out must not change protocol behaviour"
    );
}

#[test]
fn distributed_learning_uploads_are_batched() {
    let (fleet, _) = learned_fleet(16, 2);
    let uploads: Vec<_> = fleet
        .log()
        .messages()
        .iter()
        .filter_map(|m| match m {
            FleetMessage::InvariantUploads { uploads, .. } => Some(uploads),
            _ => None,
        })
        .collect();
    assert_eq!(uploads.len(), 1, "one batch for the whole learning round");
    assert_eq!(uploads[0].len(), 16, "every member appears in the batch");
    assert!(fleet.model().invariants.len() > 50);
}
