//! Fleet-wide operational metrics, derived from one accounting event stream.
//!
//! The paper evaluates ClearView per machine (overhead, patch-generation time). At
//! community scale the interesting quantities are aggregates: how many pages per
//! second the fleet sustains, how long an exploit takes from first detection to
//! community-wide immunity, how quickly a patch push reaches every member, and how
//! well the sharded manager plane parallelizes (per-shard busy time and the
//! manager-parallel speedup).
//!
//! Since PR 6 the fleet does not mutate counters ad hoc: every accountable
//! occurrence is a [`MetricEvent`] appended to the fleet's metric log, and
//! [`FleetMetrics`] is a **fold** over that stream ([`FleetMetrics::apply`] one
//! event at a time, [`FleetMetrics::from_events`] from scratch). The fleet keeps
//! an incrementally-folded cache for cheap reads, but the log is the source of
//! truth — `tests/obs_accounting.rs` re-derives the aggregate from the log and
//! asserts equality, and the timing inside each event is the *same measurement*
//! the tracing plane records (via `cv_obs` timed spans), so the trace and the
//! metrics can never disagree. The `fleet_scale` binary and `EXPERIMENTS.md`
//! record captured runs.

use cv_isa::Addr;
use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

/// One accountable occurrence in a fleet's life.
///
/// Events carry the measured durations (where timing matters) so a fold over the
/// stream reproduces the aggregate exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricEvent {
    /// One epoch executed: `pages` presentations, execution wall time, manager
    /// plane wall time.
    Epoch {
        /// Page presentations executed across all members this epoch.
        pages: u64,
        /// Wall-clock time of the member-execution fan-out.
        execution: Duration,
        /// Wall-clock time of the manager plane (routing, shards, plan merge).
        manager: Duration,
    },
    /// One epoch's manager shard fan-out.
    ManagerFanout {
        /// Busy time of each manager shard this epoch.
        shard_busy: Vec<Duration>,
        /// Wall time of the fan-out section.
        fanout: Duration,
        /// Whether the fan-out actually ran on multiple threads.
        ran_parallel: bool,
    },
    /// One patch-push round reaching `members` members.
    PatchPush {
        /// Plans pushed this round.
        pushes: u64,
        /// Members each push reached.
        members: u64,
        /// Wall time of the propagation.
        elapsed: Duration,
    },
    /// The first failure report at a location (later reports at the same
    /// location fold to nothing).
    FirstFailure {
        /// The faulting address.
        location: Addr,
        /// The epoch the report arrived in.
        epoch: u64,
    },
    /// A location became protected fleet-wide.
    Protected {
        /// The faulting address.
        location: Addr,
        /// The epoch the repair survived evaluation in.
        epoch: u64,
    },
    /// Distributed learning traced `pages` pages.
    LearningPages {
        /// Pages traced.
        pages: u64,
    },
    /// The coordinator took a checkpoint of `bytes` encoded bytes.
    Snapshot {
        /// Encoded size of the checkpoint.
        bytes: u64,
    },
    /// A member bootstrapped from a `bytes`-byte full snapshot.
    Bootstrap {
        /// Snapshot bytes shipped.
        bytes: u64,
    },
    /// A member advanced by a shard-keyed delta instead of a full snapshot.
    DeltaSync {
        /// Delta bytes actually shipped.
        delta_bytes: u64,
        /// Full-snapshot bytes the delta stood in for.
        full_bytes: u64,
    },
    /// The coordinator cut a delta.
    DeltaCut {
        /// Dirty store shards the delta carries.
        dirty_shards: u64,
        /// Plan-stamped shards since the base (0 on the diff fallback).
        plan_shards: u64,
        /// Wall time of the cut.
        elapsed: Duration,
        /// Whether the cut used the incremental dirty-epoch path.
        incremental: bool,
    },
    /// A joiner reached its first completed presentation `epochs` epochs after
    /// syncing.
    JoinerImmunity {
        /// Epochs from sync to first completed presentation.
        epochs: u64,
    },
    /// One epoch's member-state memory accounting (the event engine's
    /// copy-on-write plane; the classic scheduler reports an estimate).
    MemberResidency {
        /// Bytes proportional to the member count (slots, sparse cell values).
        resident_bytes: u64,
        /// Bytes shared across all members (shared program, config table,
        /// per-worker materialized environments), amortized per member.
        shared_bytes: u64,
        /// Members the accounting covers.
        members: u64,
    },
    // --- Tier plane -------------------------------------------------------
    // One naming scheme for everything the manager tree does: `TierMerge`
    // (upward plan merge), `TierPush` (downward plan fan-out), and `TierSync`
    // (state sync served from a tier coordinator instead of the root).
    // `RootSyncBypass` counts syncs that *should* have been tier-served but
    // read root state directly — zero whenever the tier plane is active.
    /// One tier of the hierarchical manager tree merged patch plans.
    TierMerge {
        /// Tier number, 1 = closest to the responder shards.
        tier: u64,
        /// Coordinators active at this tier.
        groups: u64,
        /// Plans entering this tier.
        plans_in: u64,
    },
    /// One tier of the hierarchical manager tree forwarded the merged plan.
    TierPush {
        /// Tier number, 1 = closest to the root coordinator.
        tier: u64,
        /// Coordinators (or member groups) receiving the plan at this tier.
        groups: u64,
        /// Members the push ultimately reaches.
        members: u64,
    },
    /// State (a delta or a full snapshot) crossed one tier link of the manager
    /// tree: a coordinator shipped `bytes` to `receivers` children at `tier`.
    /// `tier_delta_cuts` counts each **distinct delta payload** once — a tier
    /// refresh relays one payload to every row, so it counts once per row,
    /// while a member-serving ship counts per cut payload regardless of how
    /// many members it reaches.
    TierSync {
        /// Tier of the serving coordinator, 1 = directly under the root.
        tier: u64,
        /// Encoded payload size in bytes (counted once per receiver).
        bytes: u64,
        /// Children the payload was shipped to.
        receivers: u64,
        /// Whether the payload was a delta (`false` = full snapshot).
        delta: bool,
    },
    /// A sync read root state directly while the tier plane was active —
    /// the bottleneck the tree exists to remove. Tests hold this at zero.
    RootSyncBypass,
    /// One protocol phase's transport accounting, as deltas since the previous
    /// `Transport` event: what the backend sent/delivered/faulted plus the
    /// fleet-side reliability work (retransmits, duplicate suppressions).
    Transport {
        /// Envelopes handed to the backend (data + acks, retransmits included).
        sent: u64,
        /// Envelopes that reached a peer's inbox.
        delivered: u64,
        /// Envelopes the chaos plane dropped outright.
        dropped: u64,
        /// Envelopes the chaos plane duplicated.
        duplicated: u64,
        /// Unacked envelopes re-sent by the retransmit loop.
        retransmits: u64,
        /// Duplicate deliveries suppressed by the `(from, epoch, seq)` window.
        duplicates_suppressed: u64,
        /// Envelopes swallowed by an active partition.
        partition_dropped: u64,
    },
    /// Members that never acked a patch push within the retransmit budget:
    /// rolled back to their pre-push configuration and marked out of sync.
    TransportDesync {
        /// Members rolled back this push round.
        members: u64,
    },
    /// A transport-desynced member was brought back by the background resync
    /// pass.
    TransportResync {
        /// Whether a shard-keyed delta sufficed (`false` = full snapshot).
        delta: bool,
    },
    /// A member crashed with state loss.
    Crash,
    /// A member rejoined after a crash.
    Rejoin,
    /// A member joined mid-run with no state transfer.
    ColdJoin,
    /// A member joined mid-run from the coordinator's snapshot.
    WarmJoin,
}

/// The immunity timeline for one failure location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImmunityRecord {
    /// Epoch in which the failure was first reported.
    pub first_failure_epoch: u64,
    /// Epoch in which a repair survived evaluation fleet-wide, if one has.
    pub protected_epoch: Option<u64>,
}

impl ImmunityRecord {
    /// Epochs from first detection to fleet-wide immunity.
    pub fn epochs_to_immunity(&self) -> Option<u64> {
        self.protected_epoch
            .map(|p| p.saturating_sub(self.first_failure_epoch))
    }
}

/// Aggregate metrics for one fleet: the fold of its [`MetricEvent`] stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetMetrics {
    /// Epochs executed.
    pub epochs: u64,
    /// Page presentations processed across all members.
    pub pages_processed: u64,
    /// Wall-clock time spent executing member runs (the parallel section).
    pub execution_time: Duration,
    /// Wall-clock time spent in the manager plane overall (routing, responder
    /// shards, plan merge).
    pub manager_time: Duration,
    /// Wall-clock time of the shard fan-out section of the manager (the part that
    /// runs in parallel).
    pub manager_fanout_time: Duration,
    /// Per-manager-shard busy time (accumulated across epochs).
    manager_shard_busy: Vec<Duration>,
    /// Shard busy time accumulated in epochs whose fan-out actually ran on multiple
    /// threads.
    manager_parallel_busy: Duration,
    /// Fan-out wall time of those same epochs.
    manager_parallel_wall: Duration,
    /// Wall-clock time spent distributing patches to members.
    pub patch_propagation_time: Duration,
    /// Patch pushes distributed (one push reaches every member).
    pub patch_pushes: u64,
    /// Per-member patch applications performed (pushes × members reached).
    pub patch_applications: u64,
    /// Learning pages traced during distributed learning.
    pub learning_pages: u64,
    /// Checkpoints taken by the coordinator.
    pub snapshots_taken: u64,
    /// Encoded size of the most recent checkpoint, in bytes.
    pub snapshot_bytes_last: u64,
    /// Encoded bytes across all checkpoints taken.
    pub snapshot_bytes_total: u64,
    /// Members bootstrapped from a full snapshot (warm joins + full resyncs).
    pub bootstraps: u64,
    /// Snapshot bytes shipped by bootstraps.
    pub bootstrap_bytes_total: u64,
    /// Members advanced by a shard-keyed delta instead of a full snapshot.
    pub delta_syncs: u64,
    /// Delta bytes actually shipped.
    pub delta_bytes_total: u64,
    /// Full-snapshot bytes the deltas stood in for.
    pub delta_full_bytes_total: u64,
    /// Deltas cut by the coordinator (incremental or diff-based).
    pub delta_cuts: u64,
    /// Deltas cut incrementally from the dirty-epoch plane (no base snapshot
    /// materialized, O(changed) instead of O(database)).
    pub incremental_delta_cuts: u64,
    /// Wall-clock time spent cutting deltas.
    pub delta_cut_time: Duration,
    /// Dirty store shards carried by the most recent delta cut.
    pub dirty_shards_last: u64,
    /// Dirty store shards summed across all delta cuts.
    pub dirty_shards_total: u64,
    /// Shards touched by patch-plan application since the most recent
    /// incremental cut's base — the configuration-change footprint the plan
    /// stamps record (0 when the cut took the diff fallback: no tracker there).
    pub plan_dirty_shards_last: u64,
    /// Member-proportional state bytes, from the most recent residency event.
    pub member_state_bytes_last: u64,
    /// Shared (amortized) state bytes, from the most recent residency event.
    pub shared_state_bytes_last: u64,
    /// Members covered by the most recent residency event.
    pub residency_members_last: u64,
    /// Manager-tree merge tiers recorded (one event per tier per epoch with a
    /// non-empty plan).
    pub tier_merges: u64,
    /// Manager-tree push tiers recorded.
    pub tier_pushes: u64,
    /// Depth of the most recent tree push (0 = flat, no tree configured).
    pub tier_depth_last: u64,
    /// Distinct delta payloads cut for tier links (see [`MetricEvent::TierSync`]).
    pub tier_delta_cuts: u64,
    /// Bytes shipped across tier links (payload size × receivers, summed).
    pub tier_sync_bytes: u64,
    /// Syncs that read root state directly while the tier plane was active.
    pub root_sync_bypass_count: u64,
    /// Members that crashed with state loss.
    pub crashes: u64,
    /// Members that rejoined after a crash.
    pub rejoins: u64,
    /// Members that joined mid-run with no state transfer.
    pub cold_joins: u64,
    /// Members that joined mid-run from the coordinator's snapshot.
    pub warm_joins: u64,
    /// Envelopes handed to the transport backend (data + acks + retransmits).
    pub envelopes_sent: u64,
    /// Envelopes the backend delivered to a peer's inbox.
    pub envelopes_delivered: u64,
    /// Envelopes the chaos plane dropped outright.
    pub envelopes_dropped: u64,
    /// Envelopes the chaos plane duplicated.
    pub envelopes_duplicated: u64,
    /// Unacked envelopes re-sent by the retransmit loop.
    pub retransmits: u64,
    /// Duplicate deliveries suppressed by the idempotence window.
    pub duplicates_suppressed: u64,
    /// Envelopes swallowed by active partitions.
    pub partition_drops: u64,
    /// Members rolled back after missing a patch push (transport desyncs).
    pub transport_desyncs: u64,
    /// Transport-desynced members brought back by the background resync pass.
    pub transport_resyncs: u64,
    /// Of those resyncs, how many shipped a shard-keyed delta instead of a
    /// full snapshot.
    pub transport_delta_resyncs: u64,
    /// Epochs from each (re)joining member's sync to its first completed
    /// presentation — the late-joiner time-to-immunity samples.
    joiner_immunity_epochs: Vec<u64>,
    /// Immunity timelines per failure location.
    immunity: BTreeMap<Addr, ImmunityRecord>,
}

impl FleetMetrics {
    /// Metrics for a fleet whose manager plane has `manager_shard_count` shards.
    pub(crate) fn with_manager_shards(manager_shard_count: usize) -> Self {
        FleetMetrics {
            manager_shard_busy: vec![Duration::ZERO; manager_shard_count.max(1)],
            ..Default::default()
        }
    }

    /// Fold one event into the aggregate.
    pub fn apply(&mut self, event: &MetricEvent) {
        match event {
            MetricEvent::Epoch {
                pages,
                execution,
                manager,
            } => {
                self.epochs += 1;
                self.pages_processed += pages;
                self.execution_time += *execution;
                self.manager_time += *manager;
            }
            MetricEvent::ManagerFanout {
                shard_busy,
                fanout,
                ran_parallel,
            } => {
                if self.manager_shard_busy.len() < shard_busy.len() {
                    self.manager_shard_busy
                        .resize(shard_busy.len(), Duration::ZERO);
                }
                for (total, busy) in self.manager_shard_busy.iter_mut().zip(shard_busy) {
                    *total += *busy;
                }
                self.manager_fanout_time += *fanout;
                if *ran_parallel {
                    self.manager_parallel_busy += shard_busy.iter().sum::<Duration>();
                    self.manager_parallel_wall += *fanout;
                }
            }
            MetricEvent::PatchPush {
                pushes,
                members,
                elapsed,
            } => {
                self.patch_pushes += pushes;
                self.patch_applications += pushes * members;
                self.patch_propagation_time += *elapsed;
            }
            MetricEvent::FirstFailure { location, epoch } => {
                self.immunity.entry(*location).or_insert(ImmunityRecord {
                    first_failure_epoch: *epoch,
                    protected_epoch: None,
                });
            }
            MetricEvent::Protected { location, epoch } => {
                if let Some(record) = self.immunity.get_mut(location) {
                    record.protected_epoch.get_or_insert(*epoch);
                }
            }
            MetricEvent::LearningPages { pages } => {
                self.learning_pages += pages;
            }
            MetricEvent::Snapshot { bytes } => {
                self.snapshots_taken += 1;
                self.snapshot_bytes_last = *bytes;
                self.snapshot_bytes_total += bytes;
            }
            MetricEvent::Bootstrap { bytes } => {
                self.bootstraps += 1;
                self.bootstrap_bytes_total += bytes;
            }
            MetricEvent::DeltaSync {
                delta_bytes,
                full_bytes,
            } => {
                self.delta_syncs += 1;
                self.delta_bytes_total += delta_bytes;
                self.delta_full_bytes_total += full_bytes;
            }
            MetricEvent::DeltaCut {
                dirty_shards,
                plan_shards,
                elapsed,
                incremental,
            } => {
                self.delta_cuts += 1;
                if *incremental {
                    self.incremental_delta_cuts += 1;
                }
                self.delta_cut_time += *elapsed;
                self.dirty_shards_last = *dirty_shards;
                self.dirty_shards_total += dirty_shards;
                self.plan_dirty_shards_last = *plan_shards;
            }
            MetricEvent::JoinerImmunity { epochs } => {
                self.joiner_immunity_epochs.push(*epochs);
            }
            MetricEvent::MemberResidency {
                resident_bytes,
                shared_bytes,
                members,
            } => {
                self.member_state_bytes_last = *resident_bytes;
                self.shared_state_bytes_last = *shared_bytes;
                self.residency_members_last = *members;
            }
            MetricEvent::TierMerge { .. } => self.tier_merges += 1,
            MetricEvent::TierPush { tier, .. } => {
                self.tier_pushes += 1;
                self.tier_depth_last = self.tier_depth_last.max(*tier);
            }
            MetricEvent::TierSync {
                bytes,
                receivers,
                delta,
                ..
            } => {
                self.tier_sync_bytes += bytes * receivers;
                if *delta {
                    self.tier_delta_cuts += 1;
                }
            }
            MetricEvent::RootSyncBypass => self.root_sync_bypass_count += 1,
            MetricEvent::Transport {
                sent,
                delivered,
                dropped,
                duplicated,
                retransmits,
                duplicates_suppressed,
                partition_dropped,
            } => {
                self.envelopes_sent += sent;
                self.envelopes_delivered += delivered;
                self.envelopes_dropped += dropped;
                self.envelopes_duplicated += duplicated;
                self.retransmits += retransmits;
                self.duplicates_suppressed += duplicates_suppressed;
                self.partition_drops += partition_dropped;
            }
            MetricEvent::TransportDesync { members } => {
                self.transport_desyncs += members;
            }
            MetricEvent::TransportResync { delta } => {
                self.transport_resyncs += 1;
                if *delta {
                    self.transport_delta_resyncs += 1;
                }
            }
            MetricEvent::Crash => self.crashes += 1,
            MetricEvent::Rejoin => self.rejoins += 1,
            MetricEvent::ColdJoin => self.cold_joins += 1,
            MetricEvent::WarmJoin => self.warm_joins += 1,
        }
    }

    /// Fold a whole stream from scratch. With the same `manager_shard_count` and
    /// the fleet's metric log, this reproduces the fleet's incrementally-folded
    /// aggregate exactly (asserted by `tests/obs_accounting.rs`).
    pub fn from_events<'a>(
        manager_shard_count: usize,
        events: impl IntoIterator<Item = &'a MetricEvent>,
    ) -> Self {
        let mut metrics = FleetMetrics::with_manager_shards(manager_shard_count);
        for event in events {
            metrics.apply(event);
        }
        metrics
    }

    /// Mean wall-clock time per delta cut, in microseconds.
    pub fn mean_delta_cut_micros(&self) -> f64 {
        if self.delta_cuts == 0 {
            0.0
        } else {
            self.delta_cut_time.as_secs_f64() * 1e6 / self.delta_cuts as f64
        }
    }

    /// The late-joiner time-to-immunity samples (epochs from sync to first
    /// completed presentation), in sync order.
    pub fn joiner_immunity_epochs(&self) -> &[u64] {
        &self.joiner_immunity_epochs
    }

    /// The worst late-joiner time-to-immunity observed, in epochs.
    pub fn max_joiner_immunity_epochs(&self) -> Option<u64> {
        self.joiner_immunity_epochs.iter().copied().max()
    }

    /// How many times smaller the shipped deltas were than the full snapshots they
    /// replaced (1.0 when no delta sync has happened).
    pub fn delta_savings(&self) -> f64 {
        if self.delta_bytes_total == 0 || self.delta_full_bytes_total == 0 {
            1.0
        } else {
            self.delta_full_bytes_total as f64 / self.delta_bytes_total as f64
        }
    }

    /// The immunity timeline for `location`, if a failure was ever reported there.
    pub fn immunity(&self, location: Addr) -> Option<ImmunityRecord> {
        self.immunity.get(&location).copied()
    }

    /// All immunity timelines.
    pub fn immunity_records(&self) -> impl Iterator<Item = (Addr, ImmunityRecord)> + '_ {
        self.immunity.iter().map(|(a, r)| (*a, *r))
    }

    /// Total member-state cost per member, in bytes: the member-proportional
    /// state plus the shared state amortized over the fleet, from the most
    /// recent residency accounting. 0.0 before any epoch has run.
    pub fn bytes_per_member(&self) -> f64 {
        if self.residency_members_last == 0 {
            0.0
        } else {
            (self.member_state_bytes_last + self.shared_state_bytes_last) as f64
                / self.residency_members_last as f64
        }
    }

    /// Share of state syncs (bootstraps + delta syncs) that read root state
    /// directly while the tier plane was active. 0.0 when no sync has happened
    /// — and held at exactly 0.0 by the tree-sync tests whenever tiers exist.
    pub fn root_sync_bypass_share(&self) -> f64 {
        let syncs = self.bootstraps + self.delta_syncs;
        if syncs == 0 {
            0.0
        } else {
            self.root_sync_bypass_count as f64 / syncs as f64
        }
    }

    /// Sustained throughput of the execution phase, in pages per second.
    pub fn pages_per_second(&self) -> f64 {
        let secs = self.execution_time.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.pages_processed as f64 / secs
        }
    }

    /// Mean wall-clock patch-propagation latency per push (time to reach the whole
    /// fleet).
    pub fn mean_push_latency(&self) -> Option<Duration> {
        if self.patch_pushes == 0 {
            None
        } else {
            Some(self.patch_propagation_time / self.patch_pushes as u32)
        }
    }

    /// Per-manager-shard busy time accumulated across epochs.
    pub fn manager_shard_times(&self) -> &[Duration] {
        &self.manager_shard_busy
    }

    /// Mean manager-plane time per epoch, in milliseconds.
    pub fn manager_ms_per_epoch(&self) -> f64 {
        if self.epochs == 0 {
            0.0
        } else {
            self.manager_time.as_secs_f64() * 1e3 / self.epochs as f64
        }
    }

    /// The manager-parallel speedup: total shard busy time divided by fan-out wall
    /// time, over the epochs whose fan-out actually ran on multiple threads.
    ///
    /// `None` when **no fan-out ever ran on multiple threads** (single worker,
    /// single core, or too little manager work to fan out) — there is no parallel
    /// section to measure, which is different from measuring one and getting 1.0.
    /// Approaches the shard count when busy time spreads evenly across parallel
    /// workers.
    pub fn manager_parallel_speedup(&self) -> Option<f64> {
        let busy = self.manager_parallel_busy.as_secs_f64();
        let wall = self.manager_parallel_wall.as_secs_f64();
        if busy == 0.0 || wall == 0.0 {
            None
        } else {
            Some(busy / wall)
        }
    }

    /// Render the aggregate as a JSON object (hand-rolled, matching the
    /// workspace's dependency-free JSON style). Key names are prefixed
    /// distinctly from the gated throughput keys in the bench files.
    pub fn to_json(&self, indent: &str) -> String {
        let mut out = String::with_capacity(1024);
        let speedup = match self.manager_parallel_speedup() {
            Some(s) => format!("{s:.3}"),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "{{\n{indent}  \"epochs\": {},\n{indent}  \"pages_processed\": {},\n\
             {indent}  \"execution_ms\": {:.3},\n{indent}  \"manager_ms\": {:.3},\n\
             {indent}  \"manager_fanout_ms\": {:.3},\n{indent}  \"manager_parallel_speedup\": {},\n\
             {indent}  \"patch_propagation_ms\": {:.3},\n{indent}  \"patch_pushes\": {},\n\
             {indent}  \"patch_applications\": {},\n{indent}  \"learning_pages\": {},\n\
             {indent}  \"snapshots_taken\": {},\n{indent}  \"snapshot_bytes_last\": {},\n\
             {indent}  \"snapshot_bytes_total\": {},\n{indent}  \"bootstraps\": {},\n\
             {indent}  \"bootstrap_bytes_total\": {},\n{indent}  \"delta_syncs\": {},\n\
             {indent}  \"delta_bytes_total\": {},\n{indent}  \"delta_full_bytes_total\": {},\n\
             {indent}  \"delta_cuts\": {},\n{indent}  \"incremental_delta_cuts\": {},\n\
             {indent}  \"delta_cut_time_us\": {:.1},\n{indent}  \"dirty_shards_last\": {},\n\
             {indent}  \"dirty_shards_total\": {},\n{indent}  \"plan_dirty_shards_last\": {},\n\
             {indent}  \"member_state_bytes\": {},\n{indent}  \"shared_state_bytes\": {},\n\
             {indent}  \"bytes_per_member\": {:.1},\n{indent}  \"tier_merges\": {},\n\
             {indent}  \"tier_pushes\": {},\n{indent}  \"tier_depth\": {},\n\
             {indent}  \"tier_delta_cuts\": {},\n{indent}  \"tier_sync_bytes\": {},\n\
             {indent}  \"root_sync_bypass_count\": {},\n\
             {indent}  \"root_sync_bypass_share\": {:.3},\n\
             {indent}  \"crashes\": {},\n{indent}  \"rejoins\": {},\n\
             {indent}  \"cold_joins\": {},\n{indent}  \"warm_joins\": {},\n\
             {indent}  \"envelopes_sent\": {},\n{indent}  \"envelopes_delivered\": {},\n\
             {indent}  \"envelopes_dropped\": {},\n{indent}  \"envelopes_duplicated\": {},\n\
             {indent}  \"retransmits\": {},\n{indent}  \"duplicates_suppressed\": {},\n\
             {indent}  \"partition_drops\": {},\n{indent}  \"transport_desyncs\": {},\n\
             {indent}  \"transport_resyncs\": {},\n{indent}  \"transport_delta_resyncs\": {}\n\
             {indent}}}",
            self.epochs,
            self.pages_processed,
            self.execution_time.as_secs_f64() * 1e3,
            self.manager_time.as_secs_f64() * 1e3,
            self.manager_fanout_time.as_secs_f64() * 1e3,
            speedup,
            self.patch_propagation_time.as_secs_f64() * 1e3,
            self.patch_pushes,
            self.patch_applications,
            self.learning_pages,
            self.snapshots_taken,
            self.snapshot_bytes_last,
            self.snapshot_bytes_total,
            self.bootstraps,
            self.bootstrap_bytes_total,
            self.delta_syncs,
            self.delta_bytes_total,
            self.delta_full_bytes_total,
            self.delta_cuts,
            self.incremental_delta_cuts,
            self.delta_cut_time.as_secs_f64() * 1e6,
            self.dirty_shards_last,
            self.dirty_shards_total,
            self.plan_dirty_shards_last,
            self.member_state_bytes_last,
            self.shared_state_bytes_last,
            self.bytes_per_member(),
            self.tier_merges,
            self.tier_pushes,
            self.tier_depth_last,
            self.tier_delta_cuts,
            self.tier_sync_bytes,
            self.root_sync_bypass_count,
            self.root_sync_bypass_share(),
            self.crashes,
            self.rejoins,
            self.cold_joins,
            self.warm_joins,
            self.envelopes_sent,
            self.envelopes_delivered,
            self.envelopes_dropped,
            self.envelopes_duplicated,
            self.retransmits,
            self.duplicates_suppressed,
            self.partition_drops,
            self.transport_desyncs,
            self.transport_resyncs,
            self.transport_delta_resyncs,
        ));
        out
    }
}

impl fmt::Display for FleetMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fleet metrics: {} epochs, {} pages ({:.0} pages/sec execution)",
            self.epochs,
            self.pages_processed,
            self.pages_per_second()
        )?;
        writeln!(
            f,
            "  time: execution {:?}, manager {:?}, patch propagation {:?}",
            self.execution_time, self.manager_time, self.patch_propagation_time
        )?;
        writeln!(
            f,
            "  manager plane: {:.3} ms/epoch, {} shard(s), parallel speedup {}",
            self.manager_ms_per_epoch(),
            self.manager_shard_busy.len(),
            match self.manager_parallel_speedup() {
                Some(s) => format!("{s:.2}x"),
                None => "-".to_string(),
            }
        )?;
        if self.manager_shard_busy.iter().any(|d| !d.is_zero()) {
            let per_shard: Vec<String> = self
                .manager_shard_busy
                .iter()
                .map(|d| format!("{:.3}ms", d.as_secs_f64() * 1e3))
                .collect();
            writeln!(f, "  manager shard busy: [{}]", per_shard.join(", "))?;
        }
        writeln!(
            f,
            "  patches: {} pushes, {} member applications{}",
            self.patch_pushes,
            self.patch_applications,
            match self.mean_push_latency() {
                Some(lat) => format!(", mean push latency {lat:?}"),
                None => String::new(),
            }
        )?;
        if self.residency_members_last > 0 {
            writeln!(
                f,
                "  member state: {} bytes resident + {} shared across {} members \
                 ({:.1} bytes/member)",
                self.member_state_bytes_last,
                self.shared_state_bytes_last,
                self.residency_members_last,
                self.bytes_per_member()
            )?;
        }
        if self.tier_pushes > 0 {
            writeln!(
                f,
                "  manager tree: {} merge tier(s), {} push tier(s), depth {}",
                self.tier_merges, self.tier_pushes, self.tier_depth_last
            )?;
        }
        if self.tier_sync_bytes > 0 || self.root_sync_bypass_count > 0 {
            writeln!(
                f,
                "  tier sync: {} delta cut(s), {} bytes across tier links, \
                 {} root bypass(es) ({:.1}% of syncs)",
                self.tier_delta_cuts,
                self.tier_sync_bytes,
                self.root_sync_bypass_count,
                self.root_sync_bypass_share() * 100.0
            )?;
        }
        if self.snapshots_taken > 0 || self.bootstraps > 0 || self.delta_syncs > 0 {
            writeln!(
                f,
                "  durability: {} checkpoint(s) (last {} bytes), {} bootstrap(s) ({} bytes), \
                 {} delta sync(s) ({} vs {} full bytes, {:.1}x saved)",
                self.snapshots_taken,
                self.snapshot_bytes_last,
                self.bootstraps,
                self.bootstrap_bytes_total,
                self.delta_syncs,
                self.delta_bytes_total,
                self.delta_full_bytes_total,
                self.delta_savings()
            )?;
        }
        if self.delta_cuts > 0 {
            writeln!(
                f,
                "  delta cuts: {} ({} incremental), mean {:.1}µs, last touched {} dirty shard(s) \
                 ({} plan-stamped)",
                self.delta_cuts,
                self.incremental_delta_cuts,
                self.mean_delta_cut_micros(),
                self.dirty_shards_last,
                self.plan_dirty_shards_last
            )?;
        }
        if self.envelopes_sent > 0 {
            writeln!(
                f,
                "  transport: {} envelope(s) sent, {} delivered, {} retransmit(s), \
                 {} duplicate(s) suppressed",
                self.envelopes_sent,
                self.envelopes_delivered,
                self.retransmits,
                self.duplicates_suppressed
            )?;
        }
        if self.envelopes_dropped > 0 || self.partition_drops > 0 || self.transport_desyncs > 0 {
            writeln!(
                f,
                "  chaos: {} drop(s), {} duplicated, {} partition drop(s); {} desync(s), \
                 {} resync(s) ({} by delta)",
                self.envelopes_dropped,
                self.envelopes_duplicated,
                self.partition_drops,
                self.transport_desyncs,
                self.transport_resyncs,
                self.transport_delta_resyncs
            )?;
        }
        if self.crashes > 0 || self.cold_joins > 0 || self.warm_joins > 0 {
            writeln!(
                f,
                "  churn: {} crash(es), {} rejoin(s), {} warm join(s), {} cold join(s){}",
                self.crashes,
                self.rejoins,
                self.warm_joins,
                self.cold_joins,
                match self.max_joiner_immunity_epochs() {
                    Some(max) => format!(", joiner time-to-immunity <= {max} epoch(s)"),
                    None => String::new(),
                }
            )?;
        }
        for (addr, record) in &self.immunity {
            match record.epochs_to_immunity() {
                Some(epochs) => writeln!(
                    f,
                    "  failure 0x{addr:x}: immune after {epochs} epoch(s) (first seen epoch {})",
                    record.first_failure_epoch
                )?,
                None => writeln!(
                    f,
                    "  failure 0x{addr:x}: not yet immune (first seen epoch {})",
                    record.first_failure_epoch
                )?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immunity_timeline_tracks_first_failure_and_protection() {
        let mut m = FleetMetrics::default();
        m.apply(&MetricEvent::FirstFailure {
            location: 0x40,
            epoch: 3,
        });
        // Later reports don't move the origin.
        m.apply(&MetricEvent::FirstFailure {
            location: 0x40,
            epoch: 5,
        });
        assert_eq!(m.immunity(0x40).unwrap().first_failure_epoch, 3);
        assert_eq!(m.immunity(0x40).unwrap().epochs_to_immunity(), None);
        m.apply(&MetricEvent::Protected {
            location: 0x40,
            epoch: 7,
        });
        // Protection epoch is sticky.
        m.apply(&MetricEvent::Protected {
            location: 0x40,
            epoch: 9,
        });
        assert_eq!(m.immunity(0x40).unwrap().epochs_to_immunity(), Some(4));
        assert!(m.immunity(0x99).is_none());
    }

    #[test]
    fn throughput_and_latency_aggregate() {
        let mut m = FleetMetrics::default();
        let epoch = MetricEvent::Epoch {
            pages: 500,
            execution: Duration::from_millis(250),
            manager: Duration::from_millis(10),
        };
        m.apply(&epoch);
        m.apply(&epoch);
        assert_eq!(m.pages_processed, 1000);
        assert!((m.pages_per_second() - 2000.0).abs() < 1.0);
        m.apply(&MetricEvent::PatchPush {
            pushes: 2,
            members: 1000,
            elapsed: Duration::from_millis(8),
        });
        assert_eq!(m.patch_applications, 2000);
        assert_eq!(m.mean_push_latency(), Some(Duration::from_millis(4)));
    }

    #[test]
    fn from_events_reproduces_an_incremental_fold() {
        let events = vec![
            MetricEvent::Epoch {
                pages: 100,
                execution: Duration::from_millis(5),
                manager: Duration::from_millis(1),
            },
            MetricEvent::ManagerFanout {
                shard_busy: vec![Duration::from_micros(300), Duration::from_micros(500)],
                fanout: Duration::from_micros(450),
                ran_parallel: true,
            },
            MetricEvent::Snapshot { bytes: 2048 },
            MetricEvent::DeltaCut {
                dirty_shards: 3,
                plan_shards: 1,
                elapsed: Duration::from_micros(40),
                incremental: true,
            },
            MetricEvent::Crash,
            MetricEvent::Rejoin,
            MetricEvent::WarmJoin,
            MetricEvent::JoinerImmunity { epochs: 2 },
            MetricEvent::LearningPages { pages: 64 },
        ];
        let mut incremental = FleetMetrics::with_manager_shards(2);
        for e in &events {
            incremental.apply(e);
        }
        let replayed = FleetMetrics::from_events(2, &events);
        assert_eq!(incremental, replayed);
        assert_eq!(replayed.crashes, 1);
        assert_eq!(replayed.learning_pages, 64);
        assert!(replayed.manager_parallel_speedup().is_some());
    }

    #[test]
    fn speedup_is_none_without_a_parallel_fanout() {
        let mut m = FleetMetrics::with_manager_shards(4);
        assert_eq!(m.manager_parallel_speedup(), None);
        m.apply(&MetricEvent::ManagerFanout {
            shard_busy: vec![Duration::from_micros(100); 4],
            fanout: Duration::from_micros(400),
            ran_parallel: false,
        });
        assert_eq!(
            m.manager_parallel_speedup(),
            None,
            "inline fan-outs measure no parallel section"
        );
        m.apply(&MetricEvent::ManagerFanout {
            shard_busy: vec![Duration::from_micros(100); 4],
            fanout: Duration::from_micros(200),
            ran_parallel: true,
        });
        let speedup = m.manager_parallel_speedup().unwrap();
        assert!((speedup - 2.0).abs() < 1e-9);
        // Display renders the measured case with an "x", the unmeasured as "-".
        assert!(m.to_string().contains("speedup 2.00x"));
        assert!(FleetMetrics::default().to_string().contains("speedup -"));
    }

    #[test]
    fn json_dump_has_churn_and_delta_counters() {
        let mut m = FleetMetrics::default();
        m.apply(&MetricEvent::Crash);
        m.apply(&MetricEvent::DeltaCut {
            dirty_shards: 2,
            plan_shards: 0,
            elapsed: Duration::from_micros(10),
            incremental: false,
        });
        let json = m.to_json("  ");
        assert!(json.contains("\"crashes\": 1"));
        assert!(json.contains("\"delta_cuts\": 1"));
        assert!(json.contains("\"manager_parallel_speedup\": null"));
        // Distinct from the gated bench keys: the gated files use
        // "pages_per_second_sequential"/"_parallel"; this dump must not
        // introduce a bare colliding occurrence of those exact keys.
        assert!(!json.contains("\"pages_per_second_sequential\""));
    }
}
