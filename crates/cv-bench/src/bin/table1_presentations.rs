//! Regenerates Table 1 and the Red Team summary (Sections 1.1 and 4.3).
//!
//! For every exploit: the number of presentations before ClearView created and applied
//! a patch that protected against it, next to the count reported in the paper, plus the
//! headline summary (attacks blocked, exploits patched, false positives).

use cv_apps::{evaluation_suite, learning_suite, Browser, Reconfiguration};
use cv_bench::{print_table, run_red_team};
use cv_core::{learn_model, ClearViewConfig, ProtectedApplication};
use cv_runtime::{MonitorConfig, RunStatus};

fn main() {
    let with_reconfig = std::env::args().any(|a| a == "--reconfigured");
    let runs = run_red_team(with_reconfig);

    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            let measured = r
                .presentations
                .map(|n| n.to_string())
                .unwrap_or_else(|| "not patched".to_string());
            let paper = match (r.exploit.reconfiguration, r.exploit.paper_presentations) {
                (Reconfiguration::NotRepairable, _) => "not patched (!)".to_string(),
                (Reconfiguration::None, n) => n.to_string(),
                (_, n) => format!("{n} (*, after reconfiguration)"),
            };
            vec![
                r.exploit.bugzilla.to_string(),
                r.exploit.error_type.to_string(),
                measured,
                paper,
            ]
        })
        .collect();
    let mode = if with_reconfig {
        "with the paper's per-exploit reconfigurations"
    } else {
        "Red Team exercise configuration"
    };
    print_table(
        &format!("Table 1 — presentations before a successful patch ({mode})"),
        &[
            "Bugzilla",
            "Error type",
            "Presentations (measured)",
            "Presentations (paper)",
        ],
        &rows,
    );

    // Red Team summary.
    let blocked = runs.iter().filter(|r| r.always_contained).count();
    let patched = runs.iter().filter(|r| r.presentations.is_some()).count();
    println!("\n== Red Team summary ==");
    println!("attacks contained (blocked or survived): {blocked}/10   (paper: 10/10 blocked)");
    println!(
        "exploits patched: {patched}/10   (paper: 7/10 in the exercise, 9/10 after reconfiguration)"
    );

    // False-positive check: legitimate pages must not trigger patch generation.
    let browser = Browser::build();
    let (model, _) = learn_model(&browser.image, &learning_suite(), MonitorConfig::full());
    let mut app =
        ProtectedApplication::new(browser.image.clone(), model, ClearViewConfig::default());
    let mut fp = 0;
    for page in evaluation_suite() {
        let out = app.present(&page);
        if !matches!(out.status, RunStatus::Completed) {
            fp += 1;
        }
    }
    fp += app.failure_locations().len();
    println!("false positives on 57 evaluation pages: {fp}   (paper: 0)");
}
