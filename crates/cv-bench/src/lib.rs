//! # cv-bench — experiment harnesses
//!
//! Shared driver code for the binaries and Criterion benches that regenerate every
//! table and figure of the paper's evaluation (Section 4). Each binary prints the
//! paper's rows next to the values measured on this reproduction; `EXPERIMENTS.md`
//! records a captured run.
//!
//! | Target | Reproduces |
//! |---|---|
//! | `table1_presentations` | Table 1 + the Red Team summary (blocked / patched / false positives) |
//! | `table2_overheads` | Table 2 (page-load overhead per monitor configuration) |
//! | `table3_breakdown` | Table 3 (per-exploit patch-generation time breakdown) |
//! | `learning_overhead` | Section 4.4.1 (≈300× learning slowdown) |
//! | `patch_time_summary` | Section 4.4.3 (average minutes / executions to a patch) |
//! | `ablation_config` | Section 4.3.2 / 2.4.1 design-choice ablations |
//! | `fleet_scale` | Community-scale throughput: sequential vs. parallel epoch scheduling and monolithic vs. sharded invariant merges (`cv-fleet`) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cv_apps::{
    expanded_learning_suite, learning_suite, red_team_exploits, Browser, Exploit, Reconfiguration,
};
use cv_core::{learn_model, AttackTimeline, ClearViewConfig, ProtectedApplication};
use cv_inference::LearnedModel;
use cv_runtime::{MonitorConfig, RunStatus};

/// Maximum exploit presentations before the harness declares an exploit unpatched.
pub const MAX_PRESENTATIONS: u32 = 40;

/// The outcome of running the single-variant attack protocol for one exploit.
#[derive(Debug, Clone)]
pub struct ExploitRun {
    /// The exploit attacked.
    pub exploit: Exploit,
    /// Presentations until the patched application survived, if it ever did.
    pub presentations: Option<u32>,
    /// True if every presentation was blocked or survived (never silently compromised).
    pub always_contained: bool,
    /// The per-failure timelines recorded by the pipeline (one per defect repaired).
    pub timelines: Vec<AttackTimeline>,
}

/// Learn a model with the configuration appropriate for `exploit` (expanded learning
/// suite only when the exploit requires it).
pub fn model_for(browser: &Browser, exploit: &Exploit) -> LearnedModel {
    let pages = match exploit.reconfiguration {
        Reconfiguration::ExpandedLearning => expanded_learning_suite(),
        _ => learning_suite(),
    };
    learn_model(&browser.image, &pages, MonitorConfig::full()).0
}

/// The ClearView configuration appropriate for `exploit` (stack walking only when the
/// exploit requires the 285595 reconfiguration).
pub fn config_for(exploit: &Exploit) -> ClearViewConfig {
    match exploit.reconfiguration {
        Reconfiguration::StackWalk => ClearViewConfig::with_stack_walk(2),
        _ => ClearViewConfig::default(),
    }
}

/// Run the single-variant attack protocol (Section 4.3.1) for one exploit.
pub fn run_single_variant(
    browser: &Browser,
    exploit: &Exploit,
    model: LearnedModel,
    config: ClearViewConfig,
) -> ExploitRun {
    let mut app = ProtectedApplication::new(browser.image.clone(), model, config);
    let mut presentations = None;
    let mut always_contained = true;
    for i in 1..=MAX_PRESENTATIONS {
        let out = app.present(exploit.page());
        match out.status {
            RunStatus::Completed => {
                presentations = Some(i);
                break;
            }
            RunStatus::Failure(_) | RunStatus::Crash(_) => {
                if !out.blocked && !matches!(out.status, RunStatus::Crash(_)) {
                    always_contained = false;
                }
            }
        }
    }
    ExploitRun {
        exploit: exploit.clone(),
        presentations,
        always_contained,
        timelines: app.timelines(),
    }
}

/// Run the full Red Team protocol over all ten exploits, with per-exploit
/// reconfiguration where the paper applied it.
pub fn run_red_team(with_reconfiguration: bool) -> Vec<ExploitRun> {
    let browser = Browser::build();
    red_team_exploits(&browser)
        .into_iter()
        .map(|exploit| {
            let (model, config) = if with_reconfiguration {
                (model_for(&browser, &exploit), config_for(&exploit))
            } else {
                (
                    learn_model(&browser.image, &learning_suite(), MonitorConfig::full()).0,
                    ClearViewConfig::default(),
                )
            };
            run_single_variant(&browser, &exploit, model, config)
        })
        .collect()
}

/// Simple fixed-width table printer used by the harness binaries.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    println!(
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_variant_protocol_patches_a_first_repair_exploit() {
        let browser = Browser::build();
        let exploit = red_team_exploits(&browser)
            .into_iter()
            .find(|e| e.bugzilla == 290162)
            .unwrap();
        let model = model_for(&browser, &exploit);
        let run = run_single_variant(&browser, &exploit, model, config_for(&exploit));
        assert_eq!(run.presentations, Some(4));
        assert!(run.always_contained);
        assert_eq!(run.timelines.len(), 1);
    }

    #[test]
    fn config_selection_matches_reconfiguration_needs() {
        let browser = Browser::build();
        for e in red_team_exploits(&browser) {
            let c = config_for(&e);
            match e.reconfiguration {
                Reconfiguration::StackWalk => assert_eq!(c.stack_procedures_considered, 2),
                _ => assert_eq!(c.stack_procedures_considered, 1),
            }
        }
    }
}
