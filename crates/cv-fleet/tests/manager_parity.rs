//! Sharded-manager correctness, mirroring `shard_parity.rs` for the manager plane:
//! a fleet whose responder state is partitioned across many shards and driven in
//! parallel must write a **byte-identical** [`BatchLog`] — and reach byte-identical
//! responder state — to a fleet whose manager runs as the seed's single sequential
//! responder pass. The canonical [`PatchPlan`] merge (stable sort by failure
//! location) is what makes the histories comparable at all: without it, op order
//! within an epoch would depend on shard count.

use cv_apps::{learning_suite, red_team_exploits, Browser, Exploit};
use cv_core::ClearViewConfig;
use cv_fleet::{Fleet, FleetConfig, Presentation};

const NODES: usize = 48;
const EPOCHS: u64 = 10;

/// Build a fleet, learn, and run `EPOCHS` identical multi-failure epochs: three
/// distinct exploit locations attacked simultaneously, every epoch, on distinct
/// members.
fn run_scenario(config: FleetConfig) -> Fleet {
    let browser = Browser::build();
    let exploits: Vec<Exploit> = {
        let all = red_team_exploits(&browser);
        [290162u32, 296134, 312278]
            .iter()
            .map(|b| all.iter().find(|e| e.bugzilla == *b).unwrap().clone())
            .collect()
    };
    let mut fleet = Fleet::new(browser.image.clone(), ClearViewConfig::default(), config);
    fleet.distributed_learning(&learning_suite());

    for _ in 0..EPOCHS {
        let batch: Vec<Presentation> = exploits
            .iter()
            .enumerate()
            .flat_map(|(k, exploit)| {
                // Two attacked members per exploit, disjoint across exploits.
                [2 * k, 2 * k + 24]
                    .into_iter()
                    .map(|node| Presentation::new(node, exploit.page()))
            })
            .collect();
        fleet.run_epoch(&batch);
    }
    fleet
}

#[test]
fn sharded_parallel_manager_writes_the_same_log_as_the_sequential_manager() {
    // The seed shape: one manager shard, one worker, no threads.
    let sequential = run_scenario(FleetConfig::new(NODES).sequential().with_manager_shards(1));
    // The sharded shape: responder state split 8 ways, driven across 4 workers.
    let sharded = run_scenario(
        FleetConfig::new(NODES)
            .with_workers(4)
            .with_manager_shards(8),
    );

    // Both managers made the same decisions, in the same canonical order.
    assert_eq!(
        sequential.log(),
        sharded.log(),
        "sharded and sequential managers diverged"
    );
    // Byte-identical histories, not merely structurally equal ones.
    assert_eq!(
        format!("{:?}", sequential.log()),
        format!("{:?}", sharded.log())
    );

    // The per-failure responder state agrees too (reports are location-sorted).
    assert_eq!(
        format!("{:?}", sequential.reports()),
        format!("{:?}", sharded.reports())
    );
    assert!(
        !sequential.reports().is_empty(),
        "the scenario produced real multi-failure responses"
    );

    // And the responses actually progressed: every attacked location is protected.
    let browser = Browser::build();
    for sym in ["vuln_290162_call", "vuln_296134_ret", "vuln_312278_call"] {
        let location = browser.sym(sym);
        assert!(
            sequential.is_protected_against(location),
            "sequential fleet failed to protect {sym}: {:?}",
            sequential.phase_of(location)
        );
        assert!(
            sharded.is_protected_against(location),
            "sharded fleet failed to protect {sym}: {:?}",
            sharded.phase_of(location)
        );
    }
}

#[test]
fn manager_shard_count_does_not_change_the_log() {
    let reference = run_scenario(FleetConfig::new(NODES).sequential().with_manager_shards(1));
    for manager_shards in [2, 3, 8, 32] {
        let fleet = run_scenario(
            FleetConfig::new(NODES)
                .sequential()
                .with_manager_shards(manager_shards),
        );
        assert_eq!(
            reference.log(),
            fleet.log(),
            "manager_shards={manager_shards} diverged from the single-shard manager"
        );
    }
}

#[test]
fn per_shard_manager_metrics_are_recorded() {
    let fleet = run_scenario(
        FleetConfig::new(NODES)
            .with_workers(4)
            .with_manager_shards(8),
    );
    let metrics = fleet.metrics();
    assert_eq!(metrics.manager_shard_times().len(), 8);
    assert!(
        metrics.manager_shard_times().iter().any(|d| !d.is_zero()),
        "at least one manager shard did measurable work"
    );
    assert!(metrics.manager_ms_per_epoch() > 0.0);
    // None (no multi-threaded fan-out ran) and Some(s >= 0) are both legal here —
    // whether the fan-out spawns depends on machine parallelism and batch size.
    if let Some(speedup) = metrics.manager_parallel_speedup() {
        assert!(speedup >= 0.0);
    }
    // The speedup column renders in the Display output either way.
    let rendered = format!("{metrics}");
    assert!(rendered.contains("parallel speedup"), "{rendered}");
}
