//! # cv-fleet — a sharded, parallel application-community engine
//!
//! ClearView's headline result (Section 3 of the paper) is that an *application
//! community* — many machines running the same application — can collaboratively
//! learn invariants, detect attacks, and immunize members that were never attacked.
//! The `cv-community` crate demonstrates the protocol at N = a handful; this crate is
//! the same protocol engineered for thousands of simulated members:
//!
//! * [`ShardedInvariantStore`] (`shard.rs`) — the community invariant database
//!   partitioned by check-address shard, so member uploads merge in parallel, one
//!   worker per shard, with a result identical to the sequential merge.
//! * [`EpochScheduler`] (`scheduler.rs`) — execution batched into epochs and fanned
//!   out across worker threads; each member keeps its own
//!   `ManagedExecutionEnvironment`, and patches apply at epoch boundaries.
//! * [`FleetMessage`] / [`BatchLog`] (`protocol.rs`) — the batched wire protocol:
//!   invariant uploads, failure notifications, observation reports, and patch pushes
//!   travel as per-epoch batches instead of one message per event.
//! * [`FleetMetrics`] (`metrics.rs`) — pages/sec throughput, time-to-immunity per
//!   exploit, and patch-propagation latency across the fleet.
//! * [`Fleet`] (`fleet.rs`) — the central manager tying the four together: the
//!   paper's learn → detect → check → repair → distribute loop, at community scale.
//!
//! `cv-community` is a thin N=small facade over [`Fleet`] (one presentation per
//! epoch reproduces the seed's sequential protocol exactly); `examples/fleet_demo.rs`
//! and the `fleet_scale` binary in `cv-bench` exercise the 1,000+-member
//! configuration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fleet;
mod metrics;
mod protocol;
mod scheduler;
mod shard;

pub use fleet::{EpochOutcome, Fleet, FleetConfig, MemberOutcome};
pub use metrics::{FleetMetrics, ImmunityRecord};
pub use protocol::{
    BatchLog, FleetMessage, NodeId, PatchOp, PatchPush, PatchPushKind, Presentation,
};
pub use scheduler::EpochScheduler;
pub use shard::ShardedInvariantStore;
