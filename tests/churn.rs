//! Fleet churn: a 1,000-member community with 20% churn — mid-epoch crashes with
//! total state loss, delta-sync rejoins from each member's last checkpoint, full
//! rebootstraps, and warm late joiners — still reaches fleet-wide immunity, warm
//! joiners reach Protected in at most one epoch, and the deltas ship strictly
//! fewer bytes than the full snapshots they replace.

use clearview::apps::{learning_suite, red_team_exploits, Browser};
use clearview::core::ClearViewConfig;
use clearview::fleet::{Fleet, FleetConfig, MembershipOp, Presentation};

const NODES: usize = 1_000;
const ATTACKERS: [usize; 5] = [0, 123, 456, 789, 999];
/// 20% of the fleet crashes mid-run.
const KILLED: std::ops::Range<usize> = 200..400;

#[test]
fn a_thousand_member_fleet_with_twenty_percent_churn_reaches_immunity() {
    let browser = Browser::build();
    let mut fleet = Fleet::new(
        browser.image.clone(),
        ClearViewConfig::default(),
        FleetConfig::new(NODES),
    );
    fleet.distributed_learning(&learning_suite());

    let exploit = red_team_exploits(&browser)
        .into_iter()
        .find(|e| e.bugzilla == 290162)
        .unwrap();
    let location = browser.sym("vuln_290162_call");

    // The doomed members checkpoint before the outage — their rejoin will be a
    // delta sync against this base.
    let base = fleet.checkpoint();

    // Epoch 1: attacks start; 200 members run their pages and then die before the
    // boundary push (mid-epoch churn) — they will miss every patch this epoch and
    // later epochs push.
    let kills: Vec<usize> = KILLED.collect();
    let batch: Vec<Presentation> = ATTACKERS
        .iter()
        .map(|&node| Presentation::new(node, exploit.page()))
        .collect();
    fleet.run_epoch_churn(&batch, &kills);
    assert_eq!(fleet.alive_count(), NODES - kills.len());
    assert!(!fleet.is_member_alive(250));

    // The surviving fleet reaches immunity under continued attack.
    for _ in 0..12 {
        fleet.run_epoch(&batch);
        if fleet.is_protected_against(location) {
            break;
        }
    }
    assert!(fleet.is_protected_against(location));

    // Rejoin: 150 members sync by shard-keyed delta from their last checkpoint,
    // the other 50 lost their checkpoint too and re-download the full snapshot.
    for &node in &kills[..150] {
        fleet.apply_membership(MembershipOp::Rejoin {
            node,
            checkpoint: Some(&base),
        });
    }
    for &node in &kills[150..] {
        fleet.apply_membership(MembershipOp::Rejoin {
            node,
            checkpoint: None,
        });
    }
    assert_eq!(fleet.alive_count(), NODES);

    // Late joiners: 10 warm-start from the coordinator's snapshot, 3 join cold
    // (no state transfer) and get bootstrapped by an explicit resync.
    let warm: Vec<usize> = (0..10)
        .map(|_| fleet.apply_membership(MembershipOp::JoinWarm).nodes[0])
        .collect();
    let cold: Vec<usize> = (0..3)
        .map(|_| fleet.apply_membership(MembershipOp::JoinCold).nodes[0])
        .collect();
    for &node in &cold {
        assert!(!fleet.is_member_synced(node));
        fleet.apply_membership(MembershipOp::Resync(node));
        assert!(fleet.is_member_synced(node));
    }

    // Verification epoch: every member — survivors, rejoiners, late joiners —
    // is attacked and must survive via the inherited repair.
    let verify: Vec<Presentation> = (0..fleet.node_count())
        .map(|node| Presentation::new(node, exploit.page()))
        .collect();
    let outcome = fleet.run_epoch(&verify);
    assert_eq!(
        outcome.completed(),
        fleet.node_count(),
        "fleet-wide immunity despite 20% churn"
    );
    assert_eq!(outcome.blocked(), 0);

    let metrics = fleet.metrics();
    // Warm-started joiners reached Protected in at most one epoch: their first
    // (exploit!) presentation completed in the epoch right after their sync.
    assert!(
        metrics.joiner_immunity_epochs().len() >= warm.len(),
        "every warm joiner's immunity was measured"
    );
    assert!(
        metrics.max_joiner_immunity_epochs().unwrap() <= 1,
        "warm-started joiners must be Protected in <= 1 epoch, got {:?}",
        metrics.max_joiner_immunity_epochs()
    );

    // Churn accounting.
    assert_eq!(metrics.crashes, kills.len() as u64);
    assert_eq!(metrics.rejoins, kills.len() as u64);
    assert_eq!(metrics.warm_joins, warm.len() as u64);
    assert_eq!(metrics.cold_joins, cold.len() as u64);
    assert_eq!(metrics.delta_syncs, 150);

    // Delta syncs shipped strictly fewer bytes than the full snapshots they
    // replaced (the invariant baseline barely moved).
    assert!(
        metrics.delta_bytes_total < metrics.delta_full_bytes_total,
        "delta bytes {} must undercut full bytes {}",
        metrics.delta_bytes_total,
        metrics.delta_full_bytes_total
    );
    assert!(metrics.delta_savings() > 1.0);
    assert!(metrics.snapshots_taken >= 1);
    assert!(metrics.snapshot_bytes_last > 0);
}
