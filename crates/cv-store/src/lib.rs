//! # cv-store — the snapshot + delta-sync persistence plane
//!
//! ClearView's value is community amortization: once one member's failures produce a
//! validated repair and a learned invariant baseline, every other member — including
//! machines that join later or rejoin after a crash — should inherit that protection
//! instead of re-learning it. Until this crate, the fleet was purely in-memory: a
//! restarted process started from zero invariants and zero patches. `cv-store` is
//! the durability plane:
//!
//! * [`Snapshot`] (`snapshot.rs`) — a versioned, self-describing binary container
//!   (magic + format version + section table + per-section CRC-32) holding the full
//!   protection state: the community [`InvariantDatabase`](cv_inference::InvariantDatabase)
//!   written **columnar** (flat per-field arrays, so encode/decode is a sequence of
//!   flat copies), the procedure-discovery state, and the net
//!   [`PatchPlan`](cv_core::PatchPlan).
//! * [`DeltaSnapshot`] (`delta.rs`) — what changed between two checkpoints, keyed
//!   by (epoch, shard): per store shard, only the added/modified entries, plus
//!   removals, new procedures, and the target plan. An up-to-date member syncs
//!   strictly fewer bytes than a full snapshot when little changed.
//! * [`DeltaBuilder`] (`delta.rs`) — cuts the *identical* delta incrementally from
//!   the dirty-epoch plane ([`cv_inference::DirtyEpochs`]) in O(changed), without
//!   materializing or scanning a base snapshot; [`DeltaSnapshot::diff`] remains
//!   the O(database) executable specification it is proven byte-equal to.
//! * [`StoreError`] (`error.rs`) — the decoder's *reject, never misread* contract:
//!   truncation, checksum mismatches, unknown versions, and structurally impossible
//!   payloads all fail loudly.
//! * [`Envelope`] (`envelope.rs`) — one epoch-tagged, sequence-numbered
//!   coordinator↔member message in the same container format; the unit every
//!   `cv-fleet` transport backend sends and receives, with `(from, epoch, seq)`
//!   as the idempotence key for duplicate and retransmit suppression.
//! * The wire layer (`wire.rs`) — little-endian primitives, flat columns, CRC-32,
//!   and the sectioned container shared by snapshots, deltas, and envelopes.
//!
//! Shard keying reuses [`cv_inference::ShardRouter`] — the *same* routing the live
//! `ShardedInvariantStore` and the manager plane use — and re-validates it on both
//! decode and apply, so snapshots can never silently desync from the store that
//! will absorb them.
//!
//! `cv-fleet` builds its `Bootstrap`/`DeltaSync` protocol and warm-start
//! (`Fleet::from_snapshot`) on this crate; `cv-core::ProtectedApplication::restore`
//! is the single-machine equivalent; `snapshot_bench` (cv-bench) measures encode
//! and decode throughput and warm-start epochs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod delta;
mod envelope;
mod error;
mod snapshot;
mod wire;

pub use envelope::{
    Envelope, EnvelopePayload, ENVELOPE_MAGIC, ENVELOPE_VERSION, SECTION_ENVELOPE_HEADER,
    SECTION_ENVELOPE_PAYLOAD,
};

pub use delta::{
    DeltaBuilder, DeltaSnapshot, ShardDelta, DELTA_MAGIC, SECTION_DELTA_META, SECTION_PROCS_ADDED,
    SECTION_REMOVED, SECTION_STATS, SHARD_SECTION_BASE,
};
pub use error::StoreError;
pub use snapshot::{
    Snapshot, FORMAT_VERSION, SECTION_INVARIANTS, SECTION_META, SECTION_PLAN, SECTION_PROCEDURES,
    SNAPSHOT_MAGIC,
};
pub use wire::crc32;
