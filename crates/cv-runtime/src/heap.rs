//! The guest heap allocator and the canary scheme used by Heap Guard.
//!
//! The real ClearView deployment wraps the application allocator so that Heap Guard can
//! place canary values at the boundaries of allocated memory blocks and consult an
//! allocation map when a write touches a canary (Section 2.3). This module is that
//! allocator: `alloc` reserves `size` user words bracketed by one canary word on each
//! side, `free` returns the block to a free list *without clearing its contents* —
//! which is precisely the behaviour the memory-management exploits (Bugzilla 269095,
//! 312278, 320182) depend on: freed memory can be re-allocated for a different object
//! while stale pointers to it survive.

use crate::error::CrashKind;
use crate::memory::Memory;
use cv_isa::{Addr, MemoryLayout, Word};
use std::collections::BTreeMap;

/// The canary word written immediately before and after every allocation.
pub const CANARY: Word = 0xDEAD_C0DE;

/// A live allocation: `size` user words starting at the key address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Allocation {
    /// First user word.
    pub user_start: Addr,
    /// User size in words (excludes canaries).
    pub size: u32,
}

/// A free region available for reuse, in *total* words (canaries included).
#[derive(Debug, Clone, Copy)]
struct FreeBlock {
    start: Addr,
    total: u32,
}

/// The guest heap allocator.
#[derive(Debug, Clone)]
pub struct HeapAllocator {
    layout: MemoryLayout,
    /// Next never-used address (bump frontier).
    frontier: Addr,
    /// Live allocations keyed by user start address.
    live: BTreeMap<Addr, Allocation>,
    /// Recently freed blocks, most recent last (searched from the back so that a
    /// free-then-alloc of the same size deterministically reuses the same address —
    /// the allocator behaviour the use-after-free exploits rely on).
    free_list: Vec<FreeBlock>,
    /// Statistics: total allocations performed.
    pub alloc_count: u64,
    /// Statistics: total frees performed.
    pub free_count: u64,
}

impl HeapAllocator {
    /// Create an allocator for the heap segment of `layout`.
    pub fn new(layout: MemoryLayout) -> HeapAllocator {
        HeapAllocator {
            layout,
            frontier: layout.heap_base,
            live: BTreeMap::new(),
            free_list: Vec::new(),
            alloc_count: 0,
            free_count: 0,
        }
    }

    /// Allocate `size` user words; returns the address of the first user word.
    ///
    /// A `size` of zero is rounded up to one word (as most `malloc` implementations
    /// return a unique non-null pointer for zero-byte requests).
    pub fn alloc(&mut self, mem: &mut Memory, size: u32) -> Result<Addr, CrashKind> {
        let size = size.max(1);
        let total = size + 2;
        let start = self.find_region(total)?;
        let user_start = start + 1;
        mem.write_raw(start, CANARY);
        mem.write_raw(start + 1 + size, CANARY);
        self.live
            .insert(user_start, Allocation { user_start, size });
        self.alloc_count += 1;
        Ok(user_start)
    }

    fn find_region(&mut self, total: u32) -> Result<Addr, CrashKind> {
        // Prefer the most recently freed block of the exact total size.
        if let Some(pos) = self.free_list.iter().rposition(|b| b.total == total) {
            let block = self.free_list.remove(pos);
            return Ok(block.start);
        }
        // Otherwise first fit (from the back, most recently freed first) with a split.
        if let Some(pos) = self.free_list.iter().rposition(|b| b.total > total) {
            let block = self.free_list[pos];
            let remaining = block.total - total;
            if remaining >= 3 {
                self.free_list[pos] = FreeBlock {
                    start: block.start + total,
                    total: remaining,
                };
            } else {
                self.free_list.remove(pos);
            }
            return Ok(block.start);
        }
        // Fall back to the bump frontier.
        let start = self.frontier;
        let end = start.checked_add(total).ok_or(CrashKind::OutOfMemory)?;
        if end > self.layout.heap_end() {
            return Err(CrashKind::OutOfMemory);
        }
        self.frontier = end;
        Ok(start)
    }

    /// Free the allocation whose user area starts at `user_start`.
    ///
    /// The block contents (and its canaries) are left in place; only the allocation map
    /// and free list change. Freeing an address that is not a live allocation crashes
    /// the guest with [`CrashKind::InvalidFree`].
    pub fn free(&mut self, user_start: Addr) -> Result<(), CrashKind> {
        match self.live.remove(&user_start) {
            Some(a) => {
                self.free_list.push(FreeBlock {
                    start: a.user_start - 1,
                    total: a.size + 2,
                });
                self.free_count += 1;
                Ok(())
            }
            None => Err(CrashKind::InvalidFree { addr: user_start }),
        }
    }

    /// True if `addr` falls within the *user area* of some live allocation.
    pub fn is_within_live_allocation(&self, addr: Addr) -> bool {
        // The candidate allocation is the one with the greatest user_start <= addr.
        self.live
            .range(..=addr)
            .next_back()
            .map(|(_, a)| addr < a.user_start + a.size)
            .unwrap_or(false)
    }

    /// The live allocation containing `addr`, if any.
    pub fn allocation_containing(&self, addr: Addr) -> Option<Allocation> {
        self.live
            .range(..=addr)
            .next_back()
            .map(|(_, a)| *a)
            .filter(|a| addr < a.user_start + a.size)
    }

    /// Number of live allocations.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Iterate over live allocations (diagnostics).
    pub fn live_allocations(&self) -> impl Iterator<Item = Allocation> + '_ {
        self.live.values().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Memory, HeapAllocator) {
        let layout = MemoryLayout::default();
        (Memory::new(layout), HeapAllocator::new(layout))
    }

    #[test]
    fn alloc_places_canaries_around_user_area() {
        let (mut mem, mut heap) = setup();
        let p = heap.alloc(&mut mem, 4).unwrap();
        assert_eq!(mem.read_raw(p - 1), CANARY);
        assert_eq!(mem.read_raw(p + 4), CANARY);
        assert!(heap.is_within_live_allocation(p));
        assert!(heap.is_within_live_allocation(p + 3));
        assert!(!heap.is_within_live_allocation(p + 4));
        assert!(!heap.is_within_live_allocation(p - 1));
    }

    #[test]
    fn free_then_alloc_same_size_reuses_address() {
        let (mut mem, mut heap) = setup();
        let a = heap.alloc(&mut mem, 8).unwrap();
        let _b = heap.alloc(&mut mem, 8).unwrap();
        heap.free(a).unwrap();
        let c = heap.alloc(&mut mem, 8).unwrap();
        assert_eq!(
            a, c,
            "freed block of the same size is reused (use-after-free substrate)"
        );
    }

    #[test]
    fn freed_contents_are_not_cleared() {
        let (mut mem, mut heap) = setup();
        let a = heap.alloc(&mut mem, 2).unwrap();
        mem.write_raw(a, 0x41414141);
        heap.free(a).unwrap();
        assert_eq!(mem.read_raw(a), 0x41414141);
        let b = heap.alloc(&mut mem, 2).unwrap();
        assert_eq!(b, a);
        assert_eq!(
            mem.read_raw(b),
            0x41414141,
            "recycled memory is not reinitialized"
        );
    }

    #[test]
    fn invalid_free_is_a_crash() {
        let (_mem, mut heap) = setup();
        assert!(matches!(
            heap.free(0x12345),
            Err(CrashKind::InvalidFree { .. })
        ));
    }

    #[test]
    fn double_free_is_a_crash() {
        let (mut mem, mut heap) = setup();
        let a = heap.alloc(&mut mem, 1).unwrap();
        heap.free(a).unwrap();
        assert!(heap.free(a).is_err());
    }

    #[test]
    fn exhaustion_reports_out_of_memory() {
        let (mut mem, mut heap) = setup();
        let layout = MemoryLayout::default();
        let res = heap.alloc(&mut mem, layout.heap_size + 10);
        assert!(matches!(res, Err(CrashKind::OutOfMemory)));
    }

    #[test]
    fn zero_sized_allocations_get_distinct_addresses() {
        let (mut mem, mut heap) = setup();
        let a = heap.alloc(&mut mem, 0).unwrap();
        let b = heap.alloc(&mut mem, 0).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn split_of_larger_free_block() {
        let (mut mem, mut heap) = setup();
        let a = heap.alloc(&mut mem, 20).unwrap();
        heap.free(a).unwrap();
        // Smaller allocation carves the old block.
        let b = heap.alloc(&mut mem, 4).unwrap();
        assert_eq!(b, a, "reuses the start of the freed region");
        // And another small allocation still fits in the remainder without advancing
        // past the original frontier region.
        let c = heap.alloc(&mut mem, 4).unwrap();
        assert!(c > b);
    }

    #[test]
    fn allocation_containing_reports_bounds() {
        let (mut mem, mut heap) = setup();
        let a = heap.alloc(&mut mem, 5).unwrap();
        let rec = heap.allocation_containing(a + 4).unwrap();
        assert_eq!(rec.user_start, a);
        assert_eq!(rec.size, 5);
        assert!(heap.allocation_containing(a + 5).is_none());
    }
}
