//! The one shard-routing implementation every plane shares.
//!
//! Three subsystems partition state by check/failure address: the sharded community
//! invariant store (`cv-fleet`), the sharded manager plane (`cv-core::manager`), and
//! the snapshot/delta-sync persistence plane (`cv-store`). If each re-derived its own
//! address → shard map, a change to one (shard count, hash) could silently desync the
//! others — a delta snapshot cut under one routing would scatter invariants across
//! the wrong shards of a live store under another. [`ShardRouter`] is therefore the
//! single source of truth: everything that routes addresses to shards either holds a
//! `ShardRouter` or calls [`ShardRouter::route`] through a compatibility wrapper
//! (`InvariantDatabase::shard_of`).

use cv_isa::Addr;

/// Routes addresses to shards with Fibonacci multiplicative hashing.
///
/// The hash spreads the consecutive instruction addresses of hot procedures across
/// shards instead of clustering them. The high half of the product feeds the modulus —
/// the low bits of `addr * K mod 2^k` would just relabel `addr mod 2^k` for
/// power-of-two shard counts (the common case).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    shard_count: usize,
}

impl ShardRouter {
    /// A router over `shard_count` shards (at least 1).
    pub fn new(shard_count: usize) -> Self {
        ShardRouter {
            shard_count: shard_count.max(1),
        }
    }

    /// Number of shards routed to.
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// The shard that owns `addr`.
    pub fn shard_of(&self, addr: Addr) -> usize {
        Self::route(addr, self.shard_count)
    }

    /// The shard (of `shard_count`) that owns `addr` — the underlying stateless map.
    pub fn route(addr: Addr, shard_count: usize) -> usize {
        assert!(shard_count > 0, "shard_count must be positive");
        let hashed = (addr as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        (hashed % shard_count as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn router_agrees_with_the_stateless_map() {
        let router = ShardRouter::new(8);
        assert_eq!(router.shard_count(), 8);
        for addr in (0x4_0000u32..0x4_0100).step_by(4) {
            assert_eq!(router.shard_of(addr), ShardRouter::route(addr, 8));
        }
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let router = ShardRouter::new(0);
        assert_eq!(router.shard_count(), 1);
        assert_eq!(router.shard_of(0xdead), 0);
    }

    #[test]
    fn consecutive_addresses_spread_across_power_of_two_counts() {
        for shard_count in [4usize, 8, 16] {
            let mut hit = vec![false; shard_count];
            for addr in (0x4_0000u32..0x4_0400).step_by(4) {
                hit[ShardRouter::route(addr, shard_count)] = true;
            }
            assert!(hit.iter().all(|h| *h), "stride-4 must reach all shards");
        }
    }
}
